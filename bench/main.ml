(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 6).  Absolute numbers differ from the paper — our
   substrate is the scaled-down simulator described in DESIGN.md — but
   each section prints the paper-reported value next to ours so the
   comparative shape can be checked at a glance.

     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- --only fig16 # one section
     dune exec bench/main.exe -- --jobs 4     # sections in parallel workers
     dune exec bench/main.exe -- --micro      # Bechamel microbenchmarks
     dune exec bench/main.exe -- --domains 4  # engine runs on 4 domains
     dune exec bench/main.exe -- --check bench/baseline.json
                                              # perf-regression gate (exit 2)
     dune exec bench/main.exe -- --check bench/baseline.json --update
     dune exec bench/main.exe -- --platform mesh8x8-mc8
                                              # or a platform JSON file,
                                              # e.g. from occ --search-out
     OFFCHIP_APPS=apsi,swim dune exec ...     # restrict the app suite *)

module H = Harness
module Config = Sim.Config
module Engine = Sim.Engine
module Stats = Sim.Stats
module App = Workloads.App

let table1 () =
  H.header "Table 1: simulated configuration" "(paper: Table 1)";
  Format.printf "  full-scale: %a@." Config.pp (Config.default ());
  Format.printf "  scaled (used by the experiments): %a@." Config.pp
    (Config.scaled ());
  Printf.printf
    "  latencies: L1 2, L2 10, per-hop 4 cycles; XY routing, 16 B links\n\
    \  FR-FCFS, DDR3-1600 timing, 16 banks x 4 channels per controller\n\
    \  page/row buffer 4 KB; interleaving unit 4 KB or 256 B\n"

let fig3 () =
  H.header "Figure 3: off-chip accesses vs total data accesses"
    "(paper: average 22.4% under page interleaving; our scaled caches\n\
     filter more accesses, so the absolute level is lower — the per-app\n\
     variation is the point of comparison)";
  let cfg = H.page_cfg () in
  let fracs =
    List.map
      (fun app ->
        let r = H.run cfg ~optimized:false app in
        let f = 100. *. Stats.offchip_fraction r.Engine.stats in
        H.csv_row app.App.name "offchip_pct" f;
        Printf.printf "  %-10s %5.1f%% %s\n" app.App.name f (H.bar f 10. 30);
        f)
      (H.apps ())
  in
  Printf.printf "  %-10s %5.1f%%\n" "AVERAGE"
    (List.fold_left ( +. ) 0. fracs /. float_of_int (List.length fracs))

let fig4 () =
  H.header "Figure 4: impact of the optimal scheme"
    "(paper averages: on-chip net 20.8%, off-chip net 68.2%, memory 45.6%,\n\
     execution time 19.5%)";
  let cfg = H.page_cfg () in
  let optimal = { cfg with Config.optimal = true } in
  H.row4_header ();
  let rows =
    List.map
      (fun app ->
        let o = H.run cfg ~optimized:false app in
        let p = H.run optimal ~optimized:false app in
        let f = H.four_metrics o p in
        H.row4 app.App.name f;
        f)
      (H.apps ())
  in
  H.row4 "AVERAGE" (H.avg4 rows)

let table2 () =
  H.header "Table 2: arrays optimized / references satisfied"
    "(paper: per-app percentages; hpccg/minimd approximate indexed refs)";
  let ccfg = Config.customize_config (H.line_cfg ()) in
  Printf.printf "  %-10s %10s %14s\n" "" "arrays" "refs satisfied";
  List.iter
    (fun app ->
      let c = H.ctx_of app in
      let report = Core.Transform.run ~profile:c.H.profile ccfg c.H.analysis in
      Printf.printf "  %-10s %9.1f%% %13.1f%%\n" app.App.name
        report.Core.Transform.pct_arrays_optimized
        report.Core.Transform.pct_refs_satisfied)
    (H.apps ())

let fig13 () =
  H.header "Figure 13: spatial distribution of off-chip accesses to MC1 (apsi)"
    "(paper: original requests come from all over the chip; optimized\n\
     requests are skewed towards the nearby cores)";
  let cfg = H.line_cfg () in
  let app = Workloads.Suite.by_name "apsi" in
  let map label r =
    let reqs = Stats.node_mc_requests (r : Engine.result).Engine.stats in
    let total = Array.fold_left (fun a row -> a + row.(0)) 0 reqs in
    Printf.printf "  %s (%% of MC1's requests per node):\n" label;
    for y = 0 to 7 do
      Printf.printf "   ";
      for x = 0 to 7 do
        let node = (y * 8) + x in
        let f =
          100. *. float_of_int reqs.(node).(0) /. float_of_int (max 1 total)
        in
        H.csv_row label (Printf.sprintf "node%d" node) f;
        Printf.printf " %5.1f" f
      done;
      print_newline ()
    done
  in
  map "original" (H.run cfg ~optimized:false app);
  map "optimized" (H.run cfg ~optimized:true app);
  let heat label (r : Engine.result) =
    Printf.printf "  %s, as a heat map:\n%s" label
      (Sim.Platform_map.render_heat cfg
         (Array.map (fun row -> row.(0))
            (Stats.node_mc_requests r.Engine.stats)))
  in
  heat "original" (H.run cfg ~optimized:false app);
  heat "optimized" (H.run cfg ~optimized:true app);
  Printf.printf "  (MC1 is attached at the top-left corner)\n"

let four_metric_figure title paper cfg_orig cfg_opt =
  H.header title paper;
  H.row4_header ();
  let pairs =
    List.map
      (fun app ->
        let o = H.run cfg_orig ~optimized:false app in
        let p = H.run cfg_opt ~optimized:true app in
        H.row4 app.App.name (H.four_metrics o p);
        (o, p))
      (H.apps ())
  in
  H.row4 "AVERAGE" (H.avg4 (List.map (fun (o, p) -> H.four_metrics o p) pairs));
  H.row4 "WEIGHTED" (H.aggregate4 pairs)

let fig14 () =
  four_metric_figure "Figure 14: performance improvement, page interleaving"
    "(paper averages: 12.1%, 62.8%, 41.9%, 17.1%)" (H.page_cfg ())
    (H.page_cfg ~policy:Config.Mc_aware ())

let fig15 () =
  H.header "Figure 15: CDF of links traversed (all apps, cache-line interleaving)"
    "(paper: off-chip requests use significantly fewer links after the\n\
     optimization; on-chip request distances barely change)";
  let cfg = H.line_cfg () in
  let sum_hist select optimized =
    let acc = Array.make (Stats.max_hops + 1) 0 in
    List.iter
      (fun app ->
        let r = H.run cfg ~optimized app in
        Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) (select r.Engine.stats))
      (H.apps ());
    Stats.hop_cdf acc
  in
  let on_orig = sum_hist Stats.onchip_hops false in
  let on_opt = sum_hist Stats.onchip_hops true in
  let off_orig = sum_hist Stats.offchip_hops false in
  let off_opt = sum_hist Stats.offchip_hops true in
  Printf.printf "  %-6s %13s %12s %13s %13s\n" "links" "on-chip orig"
    "on-chip opt" "off-chip orig" "off-chip opt";
  for x = 0 to 14 do
    let links = Printf.sprintf "<=%d" x in
    H.csv_row links "onchip_orig" (100. *. on_orig.(x));
    H.csv_row links "onchip_opt" (100. *. on_opt.(x));
    H.csv_row links "offchip_orig" (100. *. off_orig.(x));
    H.csv_row links "offchip_opt" (100. *. off_opt.(x));
    Printf.printf "  <=%-4d %12.0f%% %11.0f%% %12.0f%% %12.0f%%\n" x
      (100. *. on_orig.(x))
      (100. *. on_opt.(x))
      (100. *. off_orig.(x))
      (100. *. off_opt.(x))
  done

let fig16 () =
  four_metric_figure
    "Figure 16: performance improvement, cache-line interleaving"
    "(paper averages: 13.6%, 66.4%, 45.8%, 20.5%)" (H.line_cfg ())
    (H.line_cfg ())

let fig17 () =
  H.header "Figure 17: execution-time improvement, mapping M1 vs M2"
    "(paper: M2 loses locality for most apps but wins for fma3d and\n\
     minighost, whose memory-parallelism demand is highest)";
  let m1o = H.line_cfg () and m2o = H.m2_cfg () in
  Printf.printf "  %-10s %8s %8s\n" "" "M1" "M2";
  List.iter
    (fun app ->
      let base = H.run m1o ~optimized:false app in
      let p1 = H.run m1o ~optimized:true app in
      let p2 = H.run m2o ~optimized:true app in
      H.csv_row app.App.name "M1" (H.exec_improvement base p1);
      H.csv_row app.App.name "M2" (H.exec_improvement base p2);
      Printf.printf "  %-10s %+7.1f%% %+7.1f%%\n" app.App.name
        (H.exec_improvement base p1) (H.exec_improvement base p2))
    (H.apps ())

let fig18 () =
  H.header
    "Figure 18: bank queue occupancy under M1 (and the compiler's mapping choice)"
    "(paper: fma3d and minighost have much higher utilization, which is\n\
     why the analysis favours M2 for them)";
  let cfg = H.line_cfg () in
  let topo = Config.topo cfg in
  let m2 =
    H.or_fail
      (Core.Cluster.m2 ~width:topo.Noc.Topology.width
         ~height:topo.Noc.Topology.height)
  in
  let m2p = H.or_fail (Core.Platform.placement_for topo m2) in
  Printf.printf "  %-10s %10s   %s\n" "" "occupancy" "selected mapping";
  List.iter
    (fun app ->
      let r = H.run cfg ~optimized:true app in
      let occ = H.avg_occupancy r in
      let chosen, _ =
        match
          Core.Mapping_select.choose_opt (Config.topo cfg)
            ~candidates:
              [ (Config.cluster cfg, Config.placement cfg); (m2, m2p) ]
            ~bank_pressure:occ
        with
        | Some c -> c
        | None -> assert false
      in
      Printf.printf "  %-10s %10.2f   %-4s %s\n" app.App.name occ
        chosen.Core.Cluster.name (H.bar occ 8. 24))
    (H.apps ())

let fig19 () =
  H.header "Figure 19: different controller placements"
    "(paper: P2 is slightly better than P1/P3 — about 20.7% average —\n\
     because its average distance-to-controller is lower)";
  let topo = Config.topo (H.line_cfg ()) in
  let with_sites name sites =
    let cfg = H.line_cfg () in
    let placement =
      H.or_fail (Core.Platform.placement_for ~sites topo (Config.cluster cfg))
    in
    ( name,
      H.or_fail
        (Config.with_placement cfg { placement with Noc.Placement.name }) )
  in
  let coords nodes = Array.map (Noc.Topology.coord_of_node topo) nodes in
  let placements =
    [
      ("P1", H.line_cfg ());
      with_sites "P2" (coords (Noc.Placement.edge_centers topo).Noc.Placement.nodes);
      with_sites "P3" (coords (Noc.Placement.top_bottom topo).Noc.Placement.nodes);
    ]
  in
  Printf.printf "  %-6s %12s %10s\n" "" "avg distance" "exec gain";
  List.iter
    (fun (name, cfg) ->
      let gains =
        List.map
          (fun app ->
            let o = H.run cfg ~optimized:false app in
            let p = H.run cfg ~optimized:true app in
            H.exec_improvement o p)
          (H.apps ())
      in
      let avg =
        List.fold_left ( +. ) 0. gains /. float_of_int (List.length gains)
      in
      Printf.printf "  %-6s %12.2f %+9.1f%%\n" name
        (Noc.Placement.avg_distance (Config.placement cfg) (Config.topo cfg))
        avg)
    placements

let fig20 () =
  H.header "Figure 20: different controller counts"
    "(paper: savings grow with more controllers — better memory\n\
     parallelism within each cluster)";
  Printf.printf "  %-8s %10s\n" "MCs" "exec gain";
  let topo = Config.topo (H.line_cfg ()) in
  List.iter
    (fun mcs ->
      let cfg =
        if mcs = 4 then H.line_cfg ()
        else
          H.or_fail
            (Result.bind
               (Core.Cluster.with_mcs_result ~width:topo.Noc.Topology.width
                  ~height:topo.Noc.Topology.height ~mcs)
               (Config.with_cluster (H.line_cfg ())))
      in
      let gains =
        List.map
          (fun app ->
            H.exec_improvement
              (H.run cfg ~optimized:false app)
              (H.run cfg ~optimized:true app))
          (H.apps ())
      in
      Printf.printf "  %-8d %+9.1f%%\n" mcs
        (List.fold_left ( +. ) 0. gains /. float_of_int (List.length gains)))
    [ 4; 8; 16 ]

let fig21 () =
  H.header "Figure 21: different core counts"
    "(paper: 14% on 4x4, 18% on 4x8, 20.5% on 8x8 — gains grow with the\n\
     network diameter)";
  Printf.printf "  %-8s %10s\n" "mesh" "exec gain";
  List.iter
    (fun (w, h) ->
      let cfg = H.or_fail (Config.mesh ~width:w ~height:h (H.line_cfg ())) in
      let gains =
        List.map
          (fun app ->
            H.exec_improvement
              (H.run cfg ~optimized:false app)
              (H.run cfg ~optimized:true app))
          (H.apps ())
      in
      Printf.printf "  %dx%-6d %+9.1f%%\n" w h
        (List.fold_left ( +. ) 0. gains /. float_of_int (List.length gains)))
    [ (4, 4); (4, 8); (8, 8) ]

let fig22 () =
  four_metric_figure "Figure 22: shared (SNUCA) L2"
    "(paper: average execution-time improvement 24.3% under shared L2)"
    (H.shared_cfg ()) (H.shared_cfg ())

let fig23 () =
  H.header "Figure 23: improvement over the first-touch policy"
    "(paper: 12.3% average; first-touch only places pages well for\n\
     wupwise, gafort and minimd)";
  let ft = H.page_cfg ~policy:Config.First_touch () in
  let ours = H.page_cfg ~policy:Config.Mc_aware () in
  let gains =
    List.map
      (fun app ->
        let o = H.run ft ~optimized:false app in
        let p = H.run ours ~optimized:true app in
        let g = H.exec_improvement o p in
        H.csv_row app.App.name "exec" g;
        Printf.printf "  %-10s %+7.1f%%%s\n" app.App.name g
          (if app.App.first_touch_friendly then "   (first-touch friendly)"
           else "");
        g)
      (H.apps ())
  in
  Printf.printf "  %-10s %+7.1f%%\n" "AVERAGE"
    (List.fold_left ( +. ) 0. gains /. float_of_int (List.length gains))

let fig24 () =
  H.header "Figure 24: more threads per core"
    "(paper: improvements grow with thread count as baseline contention\n\
     intensifies)";
  Printf.printf "  %-14s %10s\n" "threads/core" "exec gain";
  List.iter
    (fun tpc ->
      let cfg = { (H.line_cfg ()) with Config.threads_per_core = tpc } in
      let gains =
        List.map
          (fun app ->
            H.exec_improvement
              (H.run cfg ~optimized:false app)
              (H.run cfg ~optimized:true app))
          (H.apps ())
      in
      Printf.printf "  %-14d %+9.1f%%\n" tpc
        (List.fold_left ( +. ) 0. gains /. float_of_int (List.length gains)))
    [ 1; 2; 4 ]

let fig25 () =
  H.header "Figure 25: multiprogrammed workloads (weighted speedup)"
    "(paper: improvements between 5.4% and 13.1% — the layouts are\n\
     compiled for the whole machine, so co-running halves their fit.\n\
     Optimized pairs run with OS assistance: the MC-aware policy places\n\
     hinted pages on the compiler's controller, the rest by first touch)";
  let pairs =
    [
      ("W1", "apsi", "swim");
      ("W2", "fma3d", "art");
      ("W3", "wupwise", "minighost");
      ("W4", "hpccg", "ammp");
      ("W5", "galgel", "gafort");
    ]
  in
  (* original pairs see plain hardware page interleaving; optimized pairs
     additionally get the paper's OS-assisted MC-aware placement — the
     legacy deviation of benchmarking both sides with no OS assistance is
     closed *)
  let cfg_of optimized =
    if optimized then H.page_cfg ~policy:Config.Mc_aware ()
    else H.page_cfg ()
  in
  let prep cfg optimized offset vbase (app : App.t) =
    let c = H.ctx_of app in
    if optimized then
      Sim.Runner.prepare cfg ~optimized:true ~threads:32 ~core_offset:offset
        ~vaddr_base:vbase ~name:app.App.name
        ~warmup_phases:app.App.warmup_nests ~index_lookup:c.H.index_lookup
        ~profile:c.H.profile c.H.program
    else
      Sim.Runner.prepare cfg ~optimized:false ~threads:32 ~core_offset:offset
        ~vaddr_base:vbase ~name:app.App.name
        ~warmup_phases:app.App.warmup_nests ~index_lookup:c.H.index_lookup
        c.H.program
  in
  let alone cfg optimized app =
    let p = prep cfg optimized 0 0 app in
    (Sim.Runner.run_many cfg ~jobs:[ p ]).Engine.measured_time
  in
  Printf.printf "  %-4s %-22s %10s %10s %8s\n" "" "apps" "WS orig" "WS opt"
    "gain";
  List.iter
    (fun (wname, a, b) ->
      let appa = Workloads.Suite.by_name a
      and appb = Workloads.Suite.by_name b in
      let ws optimized =
        let cfg = cfg_of optimized in
        let pa = prep cfg optimized 0 0 appa in
        let pb = prep cfg optimized 32 (1 lsl 32) appb in
        let r = Sim.Runner.run_many cfg ~jobs:[ pa; pb ] in
        let ta = float_of_int (alone cfg optimized appa)
        and tb = float_of_int (alone cfg optimized appb) in
        (ta /. float_of_int (max 1 r.Engine.job_measured.(0)))
        +. (tb /. float_of_int (max 1 r.Engine.job_measured.(1)))
      in
      let wso = ws false and wsp = ws true in
      Printf.printf "  %-4s %-22s %10.3f %10.3f %+7.1f%%\n" wname (a ^ "+" ^ b)
        wso wsp
        (100. *. ((wsp /. wso) -. 1.)))
    pairs

let fig25serve () =
  H.header "Figure 25 (serve): open-system consolidation (policy x load)"
    "(weighted speedup and p95 completion latency of the serve smoke mix\n\
     under each placement policy as the arrival rate rises; each cell is\n\
     one consolidation scenario, run as a fleet in pool workers)";
  let policies =
    [
      Serve.Scenario.Interleaved;
      Serve.Scenario.First_touch;
      Serve.Scenario.Mc_aware;
    ]
  in
  let loads = [ 80000; 20000; 5000 ] in
  let grid =
    Array.of_list
      (List.concat_map (fun p -> List.map (fun l -> (p, l)) loads) policies)
  in
  let f i =
    let policy, arrival_mean = grid.(i) in
    let sc =
      { (Serve.Scenario.smoke ~policy ()) with Serve.Scenario.arrival_mean }
    in
    match Serve.Server.run sc with
    | Error e -> Error e
    | Ok run ->
      let q = run.Serve.Server.qos in
      Ok
        (Printf.sprintf "%.3f %d %d" q.Serve.Server.weighted_speedup
           q.Serve.Server.p95_latency q.Serve.Server.total_fallbacks)
  in
  let results =
    Sweep.Pool.run ~workers:4 ~timeout_s:600. ~retries:0
      ~jobs:(Array.length grid) f
  in
  Printf.printf "  %-12s %12s %8s %12s %10s\n" "policy" "mean interarr" "WS"
    "p95 latency" "fallbacks";
  Array.iteri
    (fun i outcome ->
      let policy, load = grid.(i) in
      let pname = Serve.Scenario.policy_to_string policy in
      match outcome with
      | Sweep.Pool.Completed { payload; _ } -> (
        match String.split_on_char ' ' (String.trim payload) with
        | [ ws; p95; fb ] ->
          Printf.printf "  %-12s %12d %8s %12s %10s\n" pname load ws p95 fb
        | _ -> Printf.printf "  %-12s %12d  (unparseable payload)\n" pname load)
      | Sweep.Pool.Failed { reason; _ } ->
        Printf.printf "  %-12s %12d  FAILED: %s\n" pname load reason)
    results

let alternative () =
  H.header "Alternative: loop restructuring vs / plus layout transformation"
    "(paper Section 1: loop transformations could aim at similar goals but\n\
     are constrained by dependences.  Interchange repairs cache-hostile\n\
     traversal orders where legal - an orthogonal, on-chip effect - while\n\
     the layout pass owns the Data-to-MC mapping; 'combined' runs the\n\
     layout pass on the restructured program.  Where dependences or\n\
     imperfect nests block interchange (blk), only the layout pass helps)";
  let page_ft = H.page_cfg ~policy:Config.First_touch () in
  let ours = H.page_cfg ~policy:Config.Mc_aware () in
  Printf.printf "  %-10s %15s %10s %10s %10s\n" "" "perm/align/blk" "loop"
    "layout" "combined";
  List.iter
    (fun app ->
      let c = H.ctx_of app in
      let lt = Core.Loop_transform.run c.H.analysis in
      let base = H.run page_ft ~optimized:false app in
      (* loop-restructured program under the same first-touch OS *)
      let restructured =
        Sim.Runner.run page_ft ~optimized:false
          ~warmup_phases:app.App.warmup_nests ~index_lookup:c.H.index_lookup
          lt.Core.Loop_transform.program
      in
      let layout = H.run ours ~optimized:true app in
      let combined =
        (* the layout pass applied on top of the restructured program *)
        let lt_analysis =
          Lang.Analysis.analyze lt.Core.Loop_transform.program
        in
        let profile a = Workloads.Profile.for_transform app lt_analysis a in
        Sim.Runner.run ours ~optimized:true
          ~warmup_phases:app.App.warmup_nests ~index_lookup:c.H.index_lookup
          ~profile lt.Core.Loop_transform.program
      in
      Printf.printf "  %-10s %9d/%d/%d %+9.1f%% %+9.1f%% %+9.1f%%\n"
        app.App.name lt.Core.Loop_transform.permuted_nests
        lt.Core.Loop_transform.already_aligned lt.Core.Loop_transform.blocked
        (H.exec_improvement base restructured)
        (H.exec_improvement base layout)
        (H.exec_improvement base combined))
    (H.apps ())

let ablation () =
  H.header "Ablation: model ingredients (apsi)"
    "(DESIGN.md Section 5: how much of the improvement comes from link\n\
     contention, thread decorrelation and channel bandwidth)";
  let app = Workloads.Suite.by_name "apsi" in
  let show name cfg =
    let o = H.run cfg ~optimized:false app in
    let p = H.run cfg ~optimized:true app in
    Printf.printf "  %-28s exec gain %+6.1f%%  (off-net %+6.1f%%)\n" name
      (H.exec_improvement o p)
      (H.four_metrics o p).H.offchip_net
  in
  show "default model" (H.line_cfg ());
  show "wide links (no contention)"
    {
      (H.line_cfg ()) with
      Config.noc = { Noc.Network.per_hop_latency = 4; link_bytes = 4096 };
    };
  show "no issue jitter" { (H.line_cfg ()) with Config.jitter = false };
  show "single DRAM channel" (Config.with_channels_per_mc (H.line_cfg ()) 1);
  show "FCFS scheduling (no FR)"
    { (H.line_cfg ()) with Config.mc_scheduler = Dram.Fr_fcfs.Fcfs };
  show "closed-page DRAM"
    { (H.line_cfg ()) with Config.mc_row_policy = Dram.Fr_fcfs.Closed_page }

(* --- Bechamel microbenchmarks: cost of the pass itself --- *)

let micro () =
  H.header "Microbenchmarks (Bechamel)"
    "(compile-time cost of the layout pass and hot simulator primitives)";
  let open Bechamel in
  let apsi = H.ctx_of (Workloads.Suite.by_name "apsi") in
  let ccfg = Config.customize_config (H.line_cfg ()) in
  let b =
    Affine.Matrix.of_rows
      [
        Affine.Vec.of_list [ 2; -1; 0; 3; 1 ];
        Affine.Vec.of_list [ 0; 4; 1; -2; 5 ];
        Affine.Vec.of_list [ 1; 1; 1; 1; 1 ];
      ]
  in
  let layout =
    Core.Customize.customize ccfg ~array:"A" ~extents:[| 128; 128 |]
      ~u:(Affine.Matrix.identity 2) ~v:0
  in
  let topo = Noc.Topology.make ~width:8 ~height:8 () in
  let idx = [| 37; 91 |] in
  let tests =
    Test.make_grouped ~name:"offchip"
      [
        Test.make ~name:"gauss.nullspace-3x5"
          (Staged.stage (fun () -> ignore (Affine.Gauss.nullspace b)));
        Test.make ~name:"unimodular.complete_row"
          (Staged.stage (fun () ->
               ignore
                 (Affine.Unimodular.complete_row
                    (Affine.Vec.of_list [ 0; 1; 0; 0 ])
                    ~v:0)));
        Test.make ~name:"transform.run-apsi"
          (Staged.stage (fun () ->
               ignore (Core.Transform.run ccfg apsi.H.analysis)));
        Test.make ~name:"parser.parse-apsi"
          (Staged.stage (fun () ->
               ignore (Lang.Parser.parse_result apsi.H.app.App.source)));
        Test.make ~name:"layout.offset_of_index"
          (Staged.stage (fun () -> ignore (Core.Layout.offset_of_index layout idx)));
        Test.make ~name:"topology.xy_route-corner"
          (Staged.stage (fun () ->
               ignore (Noc.Topology.xy_route topo ~src:0 ~dst:63)));
        Test.make ~name:"event_heap.churn-4k"
          (Staged.stage (fun () -> ignore (Check.heap_churn ())));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
  in
  List.iter
    (fun (name, est) -> Printf.printf "  %-40s %14.1f ns/run\n" name est)
    (List.sort compare rows)

let sensitivity () =
  H.header "Sensitivity: link width, L2 capacity, compute intensity"
    "(robustness of the execution-time gain to the scaled platform's\n\
     parameters, averaged over apsi, swim and fma3d)";
  let sample = [ "apsi"; "swim"; "fma3d" ] in
  let avg_gain cfg =
    let gains =
      List.map
        (fun name ->
          let app = Workloads.Suite.by_name name in
          H.exec_improvement
            (H.run cfg ~optimized:false app)
            (H.run cfg ~optimized:true app))
        sample
    in
    List.fold_left ( +. ) 0. gains /. float_of_int (List.length gains)
  in
  Printf.printf "  %-24s %10s\n" "variant" "exec gain";
  List.iter
    (fun (name, cfg) -> Printf.printf "  %-24s %+9.1f%%\n" name (avg_gain cfg))
    [
      ("default", H.line_cfg ());
      ( "8 B links",
        { (H.line_cfg ()) with Config.noc = { Noc.Network.per_hop_latency = 4; link_bytes = 8 } } );
      ( "32 B links",
        { (H.line_cfg ()) with Config.noc = { Noc.Network.per_hop_latency = 4; link_bytes = 32 } } );
      ("L2 8 KB/node", { (H.line_cfg ()) with Config.l2_size = 8192 });
      ("L2 32 KB/node", { (H.line_cfg ()) with Config.l2_size = 32768 });
      ("compute x0.5", { (H.line_cfg ()) with Config.compute_cycles = 8 });
      ("compute x2", { (H.line_cfg ()) with Config.compute_cycles = 32 });
    ]

let sections =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("table2", table2);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("fig18", fig18);
    ("fig19", fig19);
    ("fig20", fig20);
    ("fig21", fig21);
    ("fig22", fig22);
    ("fig23", fig23);
    ("fig24", fig24);
    ("fig25", fig25);
    ("fig25serve", fig25serve);
    ("alternative", alternative);
    ("ablation", ablation);
    ("sensitivity", sensitivity);
  ]

(* --jobs N: shard the independent sections across N forked workers via
   the sweep pool, capturing each worker's stdout and re-printing it in
   section order as results arrive.  Per-process run memoization is not
   shared between workers, so shared baselines are re-simulated in each —
   the trade for running the sections concurrently.  (OFFCHIP_CSV is a
   single shared file and is not supported in this mode; use --json.) *)
let run_sections_parallel ~jobs selected =
  let tasks = Array.of_list selected in
  let f i =
    let _, fn = tasks.(i) in
    let tmp = Filename.temp_file "bench-section" ".out" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
    flush stdout;
    Unix.dup2 fd Unix.stdout;
    Unix.close fd;
    fn ();
    Format.pp_print_flush Format.std_formatter ();
    flush stdout;
    H.flush_json_section ();
    let ic = open_in_bin tmp in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove tmp;
    Ok s
  in
  let results = Array.make (Array.length tasks) None in
  let next = ref 0 in
  let flush_ready () =
    while !next < Array.length tasks && results.(!next) <> None do
      (match results.(!next) with
      | Some (Sweep.Pool.Completed { payload; _ }) -> print_string payload
      | Some (Sweep.Pool.Failed { reason; _ }) ->
        Printf.printf "\n=== %s === FAILED: %s\n" (fst tasks.(!next)) reason
      | None -> ());
      incr next
    done;
    flush stdout
  in
  ignore
    (Sweep.Pool.run ~workers:jobs ~timeout_s:3600. ~retries:0
       ~on_outcome:(fun i o ->
         results.(i) <- Some o;
         flush_ready ())
       ~jobs:(Array.length tasks) f);
  flush_ready ()

let () =
  let args = Array.to_list Sys.argv in
  let is_flag s = String.length s >= 2 && String.sub s 0 2 = "--" in
  let rec parse only json jobs check check_out = function
    | [] -> (only, json, jobs, check, check_out)
    | "--only" :: rest ->
      let rec take acc = function
        | s :: tl when not (is_flag s) -> take (s :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let names, rest = take [] rest in
      parse (Some names) json jobs check check_out rest
    | "--platform" :: spec :: rest when not (is_flag spec) ->
      (match H.set_platform spec with
      | Ok () -> ()
      | Error e ->
        Printf.eprintf "bench: --platform %s: %s\n" spec e;
        exit 1);
      parse only json jobs check check_out rest
    | "--json" :: dir :: rest when not (is_flag dir) ->
      parse only (Some dir) jobs check check_out rest
    | "--jobs" :: n :: rest when not (is_flag n) ->
      parse only json
        (Option.value (int_of_string_opt n) ~default:jobs)
        check check_out rest
    | "--domains" :: n :: rest when not (is_flag n) ->
      (match int_of_string_opt n with
      | None ->
        Printf.eprintf "bench: --domains expects an integer (got %S)\n" n;
        exit 1
      | Some d -> (
        match Cli.check_domains ~available:Sim.Par_backend.available d with
        | Error e ->
          Printf.eprintf "bench: %s\n" e;
          exit 1
        | Ok () -> H.domains := d));
      parse only json jobs check check_out rest
    | "--check" :: path :: rest when not (is_flag path) ->
      parse only json jobs (Some path) check_out rest
    | "--check-out" :: path :: rest when not (is_flag path) ->
      parse only json jobs check (Some path) rest
    | _ :: rest -> parse only json jobs check check_out rest
  in
  let only, json, jobs, check, check_out = parse None None 1 None None (List.tl args) in
  Option.iter H.set_json_dir json;
  match check with
  | Some baseline_path ->
    exit
      (Check.run ~baseline_path
         ~update:(List.mem "--update" args)
         ~report_out:check_out ())
  | None ->
  if List.mem "--micro" args then micro ()
  else begin
    let t0 = Unix.gettimeofday () in
    let selected =
      List.filter
        (fun (name, _) ->
          match only with Some names -> List.mem name names | None -> true)
        sections
    in
    if jobs > 1 then run_sections_parallel ~jobs selected
    else List.iter (fun (_, f) -> f ()) selected;
    Printf.printf "\n(total wall time: %.0f s)\n" (Unix.gettimeofday () -. t0)
  end
