lib/cache/directory.mli:
