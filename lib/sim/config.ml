type l2_org = Private_l2 | Shared_l2

type page_policy = Hardware | First_touch | Mc_aware

type t = {
  platform : Core.Platform.t;
  l2_org : l2_org;
  page_policy : page_policy;
  l1_size : int;
  l1_line : int;
  l1_ways : int;
  l2_size : int;
  l2_ways : int;
  l1_latency : int;
  l2_latency : int;
  directory_latency : int;
  noc : Noc.Network.config;
  timing : Dram.Timing.t;
  mc_scheduler : Dram.Fr_fcfs.scheduler;
  mc_row_policy : Dram.Fr_fcfs.row_policy;
  compute_cycles : int;
  jitter : bool;
  threads_per_core : int;
  optimal : bool;
  frames_per_mc : int;
  seed : int;
}

(* Platform accessors: the simulation layers read the machine description
   through these so there is exactly one source of truth for it. *)

let platform t = t.platform

let topo t = t.platform.Core.Platform.topo

let cluster t = t.platform.Core.Platform.cluster

let placement t = t.platform.Core.Platform.placement

let interleaving t =
  match t.platform.Core.Platform.interleaving with
  | Core.Platform.Line_interleaved -> Dram.Address_map.Line_interleaved
  | Core.Platform.Page_interleaved -> Dram.Address_map.Page_interleaved

let l2_line t = t.platform.Core.Platform.line_bytes

let page_bytes t = t.platform.Core.Platform.page_bytes

let elem_bytes t = t.platform.Core.Platform.elem_bytes

let banks_per_mc t = t.platform.Core.Platform.banks_per_mc

let channels_per_mc t = t.platform.Core.Platform.channels_per_mc

let num_mcs t = Core.Platform.num_mcs t.platform

let make_default ~l1_size ~l2_size =
  {
    platform = Core.Platform.default ();
    l2_org = Private_l2;
    page_policy = Hardware;
    l1_size;
    l1_line = 64;
    l1_ways = 2;
    l2_size;
    l2_ways = (if l2_size >= 65536 then 16 else 4);
    l1_latency = 2;
    l2_latency = 10;
    directory_latency = 3;
    noc = Noc.Network.default_config;
    timing = Dram.Timing.ddr3_1600;
    mc_scheduler = Dram.Fr_fcfs.Fr_fcfs;
    mc_row_policy = Dram.Fr_fcfs.Open_page;
    compute_cycles = 16;
    jitter = true;
    threads_per_core = 1;
    optimal = false;
    frames_per_mc = 1 lsl 18;
    seed = 0;
  }

let default () = make_default ~l1_size:(16 * 1024) ~l2_size:(256 * 1024)

(* Shrunk caches, same line sizes: keeps the workload models' scaled-down
   working sets comfortably larger than the aggregate L2. *)
let scaled () = make_default ~l1_size:4096 ~l2_size:16384

let with_platform t platform = { t with platform }

let with_cluster t cluster =
  Result.map
    (fun platform -> { t with platform })
    (Core.Platform.with_cluster t.platform cluster)

let with_placement t placement =
  let p = t.platform in
  if Noc.Placement.count placement <> Core.Platform.num_mcs p then
    Error
      (Printf.sprintf "placement %s has %d sites for %d controllers"
         placement.Noc.Placement.name
         (Noc.Placement.count placement)
         (Core.Platform.num_mcs p))
  else Ok { t with platform = { p with Core.Platform.placement } }

let with_interleaving t i =
  let interleaving =
    match i with
    | Dram.Address_map.Line_interleaved -> Core.Platform.Line_interleaved
    | Dram.Address_map.Page_interleaved -> Core.Platform.Page_interleaved
  in
  { t with platform = { t.platform with Core.Platform.interleaving } }

let with_channels_per_mc t channels_per_mc =
  { t with platform = { t.platform with Core.Platform.channels_per_mc } }

let address_map t =
  Dram.Address_map.make ~interleaving:(interleaving t) ~line_bytes:(l2_line t)
    ~page_bytes:(page_bytes t) ~num_mcs:(num_mcs t)
    ~banks_per_mc:(banks_per_mc t) ()

let customize_config t =
  {
    Core.Customize.cluster = cluster t;
    topo = topo t;
    placement = placement t;
    l2 =
      (match t.l2_org with
      | Private_l2 -> Core.Customize.Private_l2
      | Shared_l2 -> Core.Customize.Shared_l2);
    p_elems = Core.Platform.granule_bytes t.platform / elem_bytes t;
    elem_bytes = elem_bytes t;
  }

let mesh ~width ~height t =
  let ( let* ) = Result.bind in
  let topo = Noc.Topology.make ~width ~height () in
  let* cluster = Core.Cluster.m1 ~width ~height in
  let* platform =
    Core.Platform.make_result
      ~interleaving:t.platform.Core.Platform.interleaving
      ~line_bytes:t.platform.Core.Platform.line_bytes
      ~page_bytes:t.platform.Core.Platform.page_bytes
      ~elem_bytes:t.platform.Core.Platform.elem_bytes
      ~banks_per_mc:t.platform.Core.Platform.banks_per_mc
      ~channels_per_mc:t.platform.Core.Platform.channels_per_mc
      ~name:(Printf.sprintf "mesh%dx%d-mc4" width height)
      ~topo ~cluster ()
  in
  Ok { t with platform }

(* Shared CLI/spec-facing builder: every choice is a plain string or scalar
   so `simulate`, `occ` and sweep specs validate configurations the same
   way and report the same one-line errors.  [platform] ("" = the default
   preset) takes precedence over [width]/[height]; [mapping] "" keeps the
   platform's own mapping. *)
let build ?(scaled = true) ?(platform = "") ?(l2 = "private")
    ?(interleave = "line") ?(policy = "hardware") ?(mapping = "")
    ?(width = 8) ?(height = 8) ?(tpc = 1) ?(optimal = false) ?(seed = 0) () =
  let ( let* ) = Result.bind in
  let* () =
    if width < 1 || height < 1 then
      Error (Printf.sprintf "bad mesh %dx%d" width height)
    else Ok ()
  in
  let* () =
    if tpc < 1 then Error (Printf.sprintf "threads-per-core must be >= 1 (got %d)" tpc)
    else Ok ()
  in
  let base =
    if scaled then make_default ~l1_size:4096 ~l2_size:16384
    else make_default ~l1_size:(16 * 1024) ~l2_size:(256 * 1024)
  in
  let* cfg =
    if platform = "" then mesh ~width ~height base
    else
      Result.map (with_platform base) (Core.Platform.of_spec platform)
  in
  (* "" keeps the platform's own mapping (M1 unless a platform says
     otherwise); an explicit M1/M2/MC-count overrides it *)
  let* cfg =
    Result.map (with_platform cfg)
      (Core.Platform.with_mapping cfg.platform mapping)
  in
  let* l2_org =
    match l2 with
    | "private" -> Ok Private_l2
    | "shared" -> Ok Shared_l2
    | s -> Error ("unknown L2 organization " ^ s)
  in
  let* interleaving =
    match interleave with
    | "line" -> Ok Dram.Address_map.Line_interleaved
    | "page" -> Ok Dram.Address_map.Page_interleaved
    | s -> Error ("unknown interleaving " ^ s)
  in
  let* page_policy =
    match policy with
    | "hardware" -> Ok Hardware
    | "first-touch" -> Ok First_touch
    | "mc-aware" -> Ok Mc_aware
    | s -> Error ("unknown policy " ^ s)
  in
  let cfg = with_interleaving cfg interleaving in
  Ok { cfg with l2_org; page_policy; threads_per_core = tpc; optimal; seed }

let to_json t =
  let open Obs.Json in
  (* emitted only on hierarchical platforms: flat configs keep the
     pre-chiplet document bytes (the seed-0 golden pins them) *)
  let hierarchy =
    match (topo t).Noc.Topology.chiplets with
    | None -> []
    | Some g ->
      [
        ( "hierarchy",
          obj
            [
              ("chiplets_x", Int g.Noc.Topology.grid_x);
              ("chiplets_y", Int g.Noc.Topology.grid_y);
              ("link_latency", Int g.Noc.Topology.link_latency);
              ("link_bytes", Int g.Noc.Topology.link_bytes);
            ] );
      ]
  in
  obj
    ([
      ("mesh_width", Int (topo t).Noc.Topology.width);
      ("mesh_height", Int (topo t).Noc.Topology.height);
    ]
    @ hierarchy
    @ [
      ( "l2_org",
        String
          (match t.l2_org with Private_l2 -> "private" | Shared_l2 -> "shared")
      );
      ( "interleaving",
        String
          (match interleaving t with
          | Dram.Address_map.Line_interleaved -> "line"
          | Dram.Address_map.Page_interleaved -> "page") );
      ( "page_policy",
        String
          (match t.page_policy with
          | Hardware -> "hardware"
          | First_touch -> "first-touch"
          | Mc_aware -> "mc-aware") );
      ("num_mcs", Int (num_mcs t));
      ("cluster", String (cluster t).Core.Cluster.name);
      ("placement", String (placement t).Noc.Placement.name);
      ("l1_size", Int t.l1_size);
      ("l1_line", Int t.l1_line);
      ("l1_ways", Int t.l1_ways);
      ("l2_size", Int t.l2_size);
      ("l2_line", Int (l2_line t));
      ("l2_ways", Int t.l2_ways);
      ("l1_latency", Int t.l1_latency);
      ("l2_latency", Int t.l2_latency);
      ("directory_latency", Int t.directory_latency);
      ("banks_per_mc", Int (banks_per_mc t));
      ("channels_per_mc", Int (channels_per_mc t));
      ( "mc_scheduler",
        String
          (match t.mc_scheduler with
          | Dram.Fr_fcfs.Fr_fcfs -> "fr-fcfs"
          | Dram.Fr_fcfs.Fcfs -> "fcfs") );
      ( "mc_row_policy",
        String
          (match t.mc_row_policy with
          | Dram.Fr_fcfs.Open_page -> "open-page"
          | Dram.Fr_fcfs.Closed_page -> "closed-page") );
      ("page_bytes", Int (page_bytes t));
      ("elem_bytes", Int (elem_bytes t));
      ("compute_cycles", Int t.compute_cycles);
      ("jitter", Bool t.jitter);
      ("threads_per_core", Int t.threads_per_core);
      ("optimal", Bool t.optimal);
      ("frames_per_mc", Int t.frames_per_mc);
      ("seed", Int t.seed);
    ])

let pp ppf t =
  Format.fprintf ppf
    "@[<v>mesh %dx%d%t, %a, %s L2 (%d B/node, %d B lines), L1 %d B, %s, %d \
     MCs, %d banks/MC@]"
    (topo t).Noc.Topology.width (topo t).Noc.Topology.height
    (fun ppf ->
      match (topo t).Noc.Topology.chiplets with
      | None -> ()
      | Some g ->
        Format.fprintf ppf " (%dx%d chiplets)" g.Noc.Topology.grid_x
          g.Noc.Topology.grid_y)
    Core.Cluster.pp (cluster t)
    (match t.l2_org with Private_l2 -> "private" | Shared_l2 -> "shared")
    t.l2_size (l2_line t) t.l1_size
    (match interleaving t with
    | Dram.Address_map.Line_interleaved -> "cache-line interleaved"
    | Dram.Address_map.Page_interleaved -> "page interleaved")
    (num_mcs t) (banks_per_mc t)
