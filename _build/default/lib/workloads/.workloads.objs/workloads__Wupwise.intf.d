lib/workloads/wupwise.mli: App
