(** Exact integer vectors.

    Vectors are the basic currency of the polyhedral machinery: iteration
    vectors, data vectors, hyperplane normals and affine offsets are all
    values of type {!t}.  All arithmetic is exact (native [int]); the
    dimensions involved in loop-nest analysis are tiny (loop depth and array
    rank are at most a handful), so overflow is not a practical concern. *)

type t = int array

val make : int -> int -> t
(** [make n c] is the [n]-dimensional vector with every component [c]. *)

val zero : int -> t
(** [zero n] is the [n]-dimensional zero vector. *)

val unit : int -> int -> t
(** [unit n i] is the [n]-dimensional unit vector with 1 at position [i]
    (0-based).  Raises [Invalid_argument] if [i] is out of range. *)

val dim : t -> int
(** Number of components. *)

val of_list : int list -> t

val to_list : t -> int list

val copy : t -> t

val add : t -> t -> t
(** Component-wise sum.  Raises [Invalid_argument] on dimension mismatch. *)

val sub : t -> t -> t
(** Component-wise difference. *)

val neg : t -> t

val scale : int -> t -> t
(** [scale k v] multiplies every component by [k]. *)

val dot : t -> t -> int
(** Inner product.  Raises [Invalid_argument] on dimension mismatch. *)

val is_zero : t -> bool

val equal : t -> t -> bool

val gcd : int -> int -> int
(** Greatest common divisor on naturals; [gcd 0 0 = 0].  Arguments may be
    negative (their absolute values are used). *)

val content : t -> int
(** [content v] is the gcd of all components (0 for the zero vector). *)

val primitive : t -> t
(** [primitive v] divides [v] by its content, yielding a primitive vector
    (components with gcd 1).  The zero vector is returned unchanged.  The
    sign is normalized so that the first nonzero component is positive. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(a, b, c)]. *)

val to_string : t -> string
