(** Profiling-based approximation of indexed array accesses (Section 5.4).

    References like [a[col[j]]] are not affine; the paper extracts the
    dense access pattern from a profile and fits an affine function that
    approximates the addresses.  Over- or under-approximation is safe —
    the fit only steers layout selection — but a bad fit (paper: more
    than 30% inaccuracy) means the reference should not be optimized. *)

val approximate :
  samples:(Affine.Vec.t * Affine.Vec.t) list ->
  (Affine.Access.t * float) option
(** [approximate ~samples] fits [a ≈ A·i + o] by per-dimension integer
    least squares over [(iteration, data-vector)] profile pairs.  Returns
    the fitted access function and its {e inaccuracy}: the fraction of
    samples whose data vector differs from the prediction.  [None] when
    there are no samples or the dimensions are inconsistent. *)

val default_threshold : float
(** Maximum acceptable inaccuracy (0.30, the paper's "more than 30%"). *)
