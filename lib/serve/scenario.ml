module Json = Obs.Json

type policy = Interleaved | First_touch | Mc_aware

type t = {
  name : string;
  platform : string;
  policy : policy;
  mix : string list;
  tenants : int;
  arrival_mean : int;
  duration : int option;
  threads_per_tenant : int;
  seed : int;
  optimized : bool;
  frames_per_mc : int option;
}

let policy_of_string = function
  | "interleaved" | "hardware" -> Ok Interleaved
  | "first-touch" -> Ok First_touch
  | "mc-aware" -> Ok Mc_aware
  | s ->
    Error
      (Printf.sprintf
         "unknown policy %S (expected interleaved, first-touch or mc-aware)" s)

let policy_to_string = function
  | Interleaved -> "interleaved"
  | First_touch -> "first-touch"
  | Mc_aware -> "mc-aware"

(* the Config.build spelling of each serving policy (all run under page
   interleaving — the only granularity where placement policies exist) *)
let config_policy = function
  | Interleaved -> "hardware"
  | First_touch -> "first-touch"
  | Mc_aware -> "mc-aware"

let smoke ?(policy = Mc_aware) ?(seed = 0) () =
  {
    name = "smoke";
    platform = "";
    policy;
    mix = [ "minimd"; "gafort" ];
    tenants = 4;
    arrival_mean = 20000;
    duration = None;
    threads_per_tenant = 32;
    seed;
    optimized = true;
    frames_per_mc = None;
  }

let validate t =
  let ( let* ) = Result.bind in
  let* () = if t.mix = [] then Error "scenario: empty tenant mix" else Ok () in
  let* () =
    match
      List.find_opt
        (fun a -> not (List.mem a Workloads.Suite.names))
        t.mix
    with
    | Some a ->
      Error
        (Printf.sprintf "scenario: unknown application %S in mix (known: %s)" a
           (String.concat ", " Workloads.Suite.names))
    | None -> Ok ()
  in
  let* () =
    if t.tenants < 1 then
      Error (Printf.sprintf "scenario: tenants must be >= 1 (got %d)" t.tenants)
    else Ok ()
  in
  let* () =
    if t.arrival_mean < 1 then
      Error
        (Printf.sprintf "scenario: arrival_mean must be >= 1 cycle (got %d)"
           t.arrival_mean)
    else Ok ()
  in
  let* () =
    if t.threads_per_tenant < 1 then
      Error
        (Printf.sprintf "scenario: threads_per_tenant must be >= 1 (got %d)"
           t.threads_per_tenant)
    else Ok ()
  in
  let* () =
    match t.duration with
    | Some d when d < 0 ->
      Error (Printf.sprintf "scenario: duration must be >= 0 (got %d)" d)
    | _ -> Ok ()
  in
  let* () =
    match t.frames_per_mc with
    | Some f when f < 1 ->
      Error (Printf.sprintf "scenario: frames_per_mc must be >= 1 (got %d)" f)
    | _ -> Ok ()
  in
  Ok t

let of_json doc =
  let ( let* ) = Result.bind in
  match doc with
  | Json.Obj _ ->
    let str_field name default =
      match Json.member name doc with
      | Some (Json.String s) -> Ok s
      | None -> Ok default
      | Some _ -> Error (Printf.sprintf "scenario: %S must be a string" name)
    in
    let int_field name default =
      match Json.member name doc with
      | Some (Json.Int n) -> Ok n
      | None -> Ok default
      | Some _ -> Error (Printf.sprintf "scenario: %S must be an integer" name)
    in
    let opt_int_field name =
      match Json.member name doc with
      | Some (Json.Int n) -> Ok (Some n)
      | None | Some Json.Null -> Ok None
      | Some _ -> Error (Printf.sprintf "scenario: %S must be an integer" name)
    in
    let bool_field name default =
      match Json.member name doc with
      | Some (Json.Bool b) -> Ok b
      | None -> Ok default
      | Some _ -> Error (Printf.sprintf "scenario: %S must be a boolean" name)
    in
    let* name = str_field "name" "scenario" in
    let* platform = str_field "platform" "" in
    let* policy_s = str_field "policy" "mc-aware" in
    let* policy = policy_of_string policy_s in
    let* mix =
      match Json.member "mix" doc with
      | Some (Json.List l) ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error "scenario: \"mix\" must be a list of app names")
          (Ok []) l
        |> Result.map List.rev
      | None -> Error "scenario: missing \"mix\" (list of app names)"
      | Some _ -> Error "scenario: \"mix\" must be a list of app names"
    in
    let* tenants = int_field "tenants" 4 in
    let* arrival_mean = int_field "arrival_mean" 20000 in
    let* duration = opt_int_field "duration" in
    let* threads_per_tenant = int_field "threads_per_tenant" 32 in
    let* seed = int_field "seed" 0 in
    let* optimized = bool_field "optimized" true in
    let* frames_per_mc = opt_int_field "frames_per_mc" in
    validate
      {
        name;
        platform;
        policy;
        mix;
        tenants;
        arrival_mean;
        duration;
        threads_per_tenant;
        seed;
        optimized;
        frames_per_mc;
      }
  | _ -> Error "scenario: not a JSON object"

let to_json t =
  Json.obj
    ([
       ("name", Json.String t.name);
       ("platform", Json.String t.platform);
       ("policy", Json.String (policy_to_string t.policy));
       ("mix", Json.list (fun s -> Json.String s) t.mix);
       ("tenants", Json.Int t.tenants);
       ("arrival_mean", Json.Int t.arrival_mean);
     ]
    @ (match t.duration with
      | Some d -> [ ("duration", Json.Int d) ]
      | None -> [])
    @ [
        ("threads_per_tenant", Json.Int t.threads_per_tenant);
        ("seed", Json.Int t.seed);
        ("optimized", Json.Bool t.optimized);
      ]
    @
    match t.frames_per_mc with
    | Some f -> [ ("frames_per_mc", Json.Int f) ]
    | None -> [])

let config t =
  let ( let* ) = Result.bind in
  let* cfg =
    Sim.Config.build ~scaled:true ~platform:t.platform ~interleave:"page"
      ~policy:(config_policy t.policy) ~seed:t.seed ()
  in
  Ok
    (match t.frames_per_mc with
    | Some frames_per_mc -> { cfg with Sim.Config.frames_per_mc }
    | None -> cfg)
