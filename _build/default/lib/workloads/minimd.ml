(** minimd (Mantevo): molecular dynamics — Lennard-Jones force loops over
    per-atom neighbor lists.  Atoms are cell-sorted, so the neighbor-list
    contents are near-affine and the Section 5.4 approximation succeeds;
    owner-parallel initialization makes first-touch effective. *)

let k_neigh = 12

let n = 16384

let clamp lo hi x = max lo (min hi x)

let neigh v =
  (* cell-sorted neighbors: atom i's k-th neighbor is near i *)
  clamp 0 (n - 1) (v.(0) + v.(1) - (k_neigh / 2))

let app =
  App.make ~name:"minimd"
    ~description:"molecular dynamics: neighbor-list force loops"
    ~index:[ ("NEIGH", neigh) ]
    ~first_touch_friendly:true
    {|
param N = 16384;
param K = 12;
array PX[N];
array FX[N];
index NEIGH[N][K];
// owner-parallel init: first touch by the computing core
parfor i = 0 to N-1 {
  PX[i] = i;
  FX[i] = 0;
}
parfor i = 0 to N-1 {
  for k = 0 to K-1 {
    FX[i] = FX[i] + PX[NEIGH[i][k]] - PX[i];
  }
}
|}
