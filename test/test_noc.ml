(* Tests for the NoC substrate: topology, XY routing, placements, and the
   link-contention model. *)

module Coord = Noc.Coord
module Topology = Noc.Topology
module Placement = Noc.Placement
module Network = Noc.Network

let topo8 = Topology.make ~width:8 ~height:8

let ok = function Ok v -> v | Error e -> failwith e

let test_node_coord_roundtrip () =
  for n = 0 to Topology.nodes topo8 - 1 do
    Alcotest.(check int) "roundtrip" n
      (Topology.node_of_coord topo8 (Topology.coord_of_node topo8 n))
  done

let test_distance () =
  let n00 = Topology.node_of_coord topo8 (Coord.make 0 0) in
  let n77 = Topology.node_of_coord topo8 (Coord.make 7 7) in
  Alcotest.(check int) "corner to corner" 14 (Topology.distance topo8 n00 n77);
  Alcotest.(check int) "self" 0 (Topology.distance topo8 n00 n00)

let prop_route_length =
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Printf.sprintf "%d->%d" a b)
      QCheck.Gen.(pair (int_range 0 63) (int_range 0 63))
  in
  QCheck.Test.make ~name:"XY route length = manhattan distance" ~count:500 arb
    (fun (src, dst) ->
      List.length (Topology.xy_route topo8 ~src ~dst)
      = Topology.distance topo8 src dst)

let prop_route_valid =
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Printf.sprintf "%d->%d" a b)
      QCheck.Gen.(pair (int_range 0 63) (int_range 0 63))
  in
  QCheck.Test.make ~name:"XY route: X links first, then Y, ends at dst" ~count:500
    arb
    (fun (src, dst) ->
      let route = Topology.xy_route topo8 ~src ~dst in
      let is_x l = l.Topology.dir = Topology.East || l.Topology.dir = Topology.West in
      let rec check_order seen_y = function
        | [] -> true
        | l :: r ->
          if is_x l then (not seen_y) && check_order false r
          else check_order true r
      in
      let step n (l : Topology.link) =
        assert (l.Topology.from_node = n);
        match l.Topology.dir with
        | Topology.East -> n + 1
        | Topology.West -> n - 1
        | Topology.South -> n + 8
        | Topology.North -> n - 8
      in
      check_order false route && List.fold_left step src route = dst)

let test_link_ids_distinct () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (src, dst) ->
      List.iter
        (fun l ->
          let id = Topology.link_id topo8 l in
          Alcotest.(check bool) "id in range" true (id >= 0 && id < Topology.num_link_ids topo8);
          Hashtbl.replace seen (l.Topology.from_node, l.Topology.dir) id)
        (Topology.xy_route topo8 ~src ~dst))
    [ (0, 63); (63, 0); (7, 56); (56, 7) ];
  let ids = Hashtbl.fold (fun _ id acc -> id :: acc) seen [] in
  Alcotest.(check int) "distinct ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_placements () =
  let p1 = Placement.corners topo8 in
  Alcotest.(check int) "P1 has 4 MCs" 4 (Placement.count p1);
  let p2 = Placement.edge_centers topo8 in
  let p3 = Placement.top_bottom topo8 in
  (* P2 has the lowest average distance to the nearest controller *)
  Alcotest.(check bool) "P2 beats P1" true
    (Placement.avg_distance p2 topo8 < Placement.avg_distance p1 topo8);
  Alcotest.(check bool) "P2 beats P3" true
    (Placement.avg_distance p2 topo8 <= Placement.avg_distance p3 topo8)

let test_nearest () =
  let p1 = Placement.corners topo8 in
  let at x y = Topology.node_of_coord topo8 (Coord.make x y) in
  (* corners order: assign puts MC0 at NW *)
  let m = Placement.nearest p1 topo8 (at 1 1) in
  Alcotest.(check int) "NW node goes to the NW corner MC"
    (Topology.node_of_coord topo8 (Coord.make 0 0))
    (Placement.mc_node p1 m)

let test_ring () =
  let r8 = ok (Placement.ring_result topo8 ~count:8) in
  Alcotest.(check int) "8 MCs" 8 (Placement.count r8);
  (* all attachment nodes distinct and on the perimeter *)
  let nodes = Array.to_list r8.Placement.nodes in
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare nodes));
  List.iter
    (fun n ->
      let c = Topology.coord_of_node topo8 n in
      Alcotest.(check bool) "on perimeter" true
        (c.Coord.x = 0 || c.Coord.x = 7 || c.Coord.y = 0 || c.Coord.y = 7))
    nodes;
  match Placement.ring_result topo8 ~count:100 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "more MCs than perimeter nodes must be a value error"

let test_assign_alignment () =
  (* assign keeps MC index <-> centroid correspondence: MC j lands on the
     site closest to centroid j (greedy) *)
  let sites = [| Coord.make 0 0; Coord.make 7 0; Coord.make 0 7; Coord.make 7 7 |] in
  let centroids = [| Coord.make 6 6; Coord.make 1 1; Coord.make 6 1; Coord.make 1 6 |] in
  let p = ok (Placement.assign_result topo8 ~name:"t" ~sites ~centroids) in
  Alcotest.(check int) "MC0 at SE" (Topology.node_of_coord topo8 (Coord.make 7 7))
    (Placement.mc_node p 0);
  Alcotest.(check int) "MC1 at NW" (Topology.node_of_coord topo8 (Coord.make 0 0))
    (Placement.mc_node p 1)

(* --- assignment properties (qcheck) --- *)

(* Random assignment instances: n centroids anywhere in the mesh, and a
   shuffled subset of the perimeter (at least n sites) to place on. *)
let assign_arb =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* extra = int_range 0 8 in
      let* perm =
        shuffle_l (Array.to_list (Placement.perimeter_sites topo8))
      in
      let* centroids =
        list_repeat n (map (fun (x, y) -> Coord.make x y)
                         (pair (int_range 0 7) (int_range 0 7)))
      in
      let sites = List.filteri (fun i _ -> i < n + extra) perm in
      return (Array.of_list sites, Array.of_list centroids))
  in
  QCheck.make
    ~print:(fun (sites, centroids) ->
      let s a =
        String.concat ";"
          (Array.to_list
             (Array.map (fun c -> Printf.sprintf "(%d,%d)" c.Coord.x c.Coord.y) a))
      in
      Printf.sprintf "sites=%s centroids=%s" (s sites) (s centroids))
    gen

let placement_sites p =
  Array.map (Topology.coord_of_node topo8) p.Placement.nodes

(* The 2-opt refinement never produces a costlier assignment than the
   plain greedy seed it starts from. *)
let prop_twoopt_not_worse =
  QCheck.Test.make ~name:"assign: 2-opt <= greedy (centroid distance)"
    ~count:300 assign_arb (fun (sites, centroids) ->
      let refined =
        ok (Placement.assign_result topo8 ~name:"r" ~sites ~centroids)
      in
      let greedy =
        ok (Placement.greedy_assign_result topo8 ~name:"g" ~sites ~centroids)
      in
      Placement.centroid_distance ~sites:(placement_sites refined) ~centroids
      <= Placement.centroid_distance ~sites:(placement_sites greedy) ~centroids)

(* The refinement permutes site assignments but never forgets the
   MC-index <-> cluster-index correspondence the interleaved layout needs:
   one distinct site per centroid, every site drawn from the given set. *)
let prop_assign_correspondence =
  QCheck.Test.make ~name:"assign: one distinct in-set site per MC" ~count:300
    assign_arb (fun (sites, centroids) ->
      let p = ok (Placement.assign_result topo8 ~name:"c" ~sites ~centroids) in
      let chosen = placement_sites p in
      Placement.count p = Array.length centroids
      && Array.for_all
           (fun c -> Array.exists (Coord.equal c) sites)
           chosen
      &&
      let distinct = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b -> if i < j && Coord.equal a b then distinct := false)
            chosen)
        chosen;
      !distinct)

(* Every neighborhood move is legal, and the enumeration is deterministic. *)
let prop_neighborhood_legal =
  QCheck.Test.make ~name:"neighborhood: all moves legal, order stable"
    ~count:100 assign_arb (fun (sites, centroids) ->
      let p = ok (Placement.assign_result topo8 ~name:"n" ~sites ~centroids) in
      let state = placement_sites p in
      let pool = Placement.pool_sites topo8 Placement.Perimeter in
      let moves = Placement.neighborhood ~pool ~sites:state in
      moves = Placement.neighborhood ~pool ~sites:state
      && List.for_all
           (fun m ->
             match Placement.apply_move_result topo8 ~sites:state m with
             | Ok next ->
               (* a move changes the state but never its size *)
               Array.length next = Array.length state && next <> state
             | Error _ -> false)
           moves)

(* --- move operators and site pools --- *)

let test_site_pools () =
  Alcotest.(check int) "perimeter 8x8" 28
    (Array.length (Placement.pool_sites topo8 Placement.Perimeter));
  Alcotest.(check int) "flip-chip 8x8 = all nodes" 64
    (Array.length (Placement.pool_sites topo8 Placement.Flip_chip));
  Alcotest.(check string) "to_string" "flip-chip"
    (Placement.pool_to_string Placement.Flip_chip);
  (match Placement.pool_of_string "perimeter" with
  | Ok Placement.Perimeter -> ()
  | _ -> Alcotest.fail "perimeter should parse");
  match Placement.pool_of_string "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown pool should be an error"

let test_moves () =
  let sites = [| Coord.make 0 0; Coord.make 7 0 |] in
  (* swap exchanges, leaving the input untouched *)
  (match
     Placement.apply_move_result topo8 ~sites (Placement.Swap { a = 0; b = 1 })
   with
  | Ok next ->
    Alcotest.(check bool) "swapped" true
      (Coord.equal next.(0) (Coord.make 7 0) && Coord.equal next.(1) (Coord.make 0 0));
    Alcotest.(check bool) "input intact" true (Coord.equal sites.(0) (Coord.make 0 0))
  | Error e -> Alcotest.fail e);
  (* relocate moves one MC to a free site *)
  (match
     Placement.apply_move_result topo8 ~sites
       (Placement.Relocate { mc = 1; site = Coord.make 3 7 })
   with
  | Ok next -> Alcotest.(check bool) "relocated" true (Coord.equal next.(1) (Coord.make 3 7))
  | Error e -> Alcotest.fail e);
  (* the error cases are values, not exceptions *)
  let expect_error name = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be an error" name
  in
  expect_error "self-swap"
    (Placement.apply_move_result topo8 ~sites (Placement.Swap { a = 1; b = 1 }));
  expect_error "swap out of range"
    (Placement.apply_move_result topo8 ~sites (Placement.Swap { a = 0; b = 9 }));
  expect_error "occupied target"
    (Placement.apply_move_result topo8 ~sites
       (Placement.Relocate { mc = 0; site = Coord.make 7 0 }));
  expect_error "off-mesh target"
    (Placement.apply_move_result topo8 ~sites
       (Placement.Relocate { mc = 0; site = Coord.make 9 9 }))

(* --- network contention --- *)

let test_network_unloaded () =
  let net = Network.create topo8 in
  let arrival, hops, contention = Network.send net ~now:100 ~src:0 ~dst:7 ~bytes:8 in
  Alcotest.(check int) "hops" 7 hops;
  Alcotest.(check int) "no contention" 0 contention;
  Alcotest.(check int) "arrival = now + hops*4 (1 flit)" (100 + 28) arrival

let test_network_serialization () =
  let net = Network.create topo8 in
  (* 264 bytes over 16-byte links = 17 flits: body pipelines behind header *)
  let arrival, hops, contention = Network.send net ~now:0 ~src:0 ~dst:1 ~bytes:264 in
  Alcotest.(check int) "hops" 1 hops;
  Alcotest.(check int) "no queueing on idle link" 0 contention;
  Alcotest.(check int) "arrival includes serialization" (4 + 16) arrival

let test_network_contention () =
  let net = Network.create topo8 in
  let a1, _, c1 = Network.send net ~now:0 ~src:0 ~dst:1 ~bytes:264 in
  let a2, _, c2 = Network.send net ~now:0 ~src:0 ~dst:1 ~bytes:264 in
  Alcotest.(check int) "first unqueued" 0 c1;
  Alcotest.(check bool) "second waits for the link" true (c2 > 0);
  Alcotest.(check bool) "second arrives later" true (a2 > a1);
  (* disjoint paths do not contend *)
  let _, _, c3 = Network.send net ~now:0 ~src:56 ~dst:57 ~bytes:264 in
  Alcotest.(check int) "disjoint path unaffected" 0 c3

let test_network_same_node () =
  let net = Network.create topo8 in
  let arrival, hops, contention = Network.send net ~now:42 ~src:5 ~dst:5 ~bytes:264 in
  Alcotest.(check (triple int int int)) "instant local delivery" (42, 0, 0)
    (arrival, hops, contention)

let test_network_reset () =
  let net = Network.create topo8 in
  ignore (Network.send net ~now:0 ~src:0 ~dst:7 ~bytes:264);
  Alcotest.(check bool) "busy recorded" true (Network.total_link_busy net > 0);
  Network.reset net;
  Alcotest.(check int) "reset clears" 0 (Network.total_link_busy net);
  let _, _, c = Network.send net ~now:0 ~src:0 ~dst:7 ~bytes:264 in
  Alcotest.(check int) "no stale reservations" 0 c

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "noc.topology",
      [
        Alcotest.test_case "node/coord roundtrip" `Quick test_node_coord_roundtrip;
        Alcotest.test_case "distance" `Quick test_distance;
        Alcotest.test_case "link ids" `Quick test_link_ids_distinct;
      ]
      @ qsuite [ prop_route_length; prop_route_valid ] );
    ( "noc.placement",
      [
        Alcotest.test_case "P1/P2/P3" `Quick test_placements;
        Alcotest.test_case "nearest" `Quick test_nearest;
        Alcotest.test_case "ring" `Quick test_ring;
        Alcotest.test_case "assign alignment" `Quick test_assign_alignment;
        Alcotest.test_case "site pools" `Quick test_site_pools;
        Alcotest.test_case "move operators" `Quick test_moves;
      ]
      @ qsuite
          [
            prop_twoopt_not_worse;
            prop_assign_correspondence;
            prop_neighborhood_legal;
          ] );
    ( "noc.network",
      [
        Alcotest.test_case "unloaded latency" `Quick test_network_unloaded;
        Alcotest.test_case "serialization" `Quick test_network_serialization;
        Alcotest.test_case "contention" `Quick test_network_contention;
        Alcotest.test_case "local delivery" `Quick test_network_same_node;
        Alcotest.test_case "reset" `Quick test_network_reset;
      ] );
  ]
