module Analysis = Lang.Analysis

type prepared = {
  program : Lang.Ast.program;
  analysis : Lang.Analysis.t;
  report : Core.Transform.report option;
  job : Engine.job;
  bases : (string * int) list;
  desired_mc : int -> int option;
      (** compiler page hints: the controller each virtual page of an
          optimized array should live on (page interleaving) *)
  sites : Lang.Sites.t;
      (** access-site table of [program]; the job's site streams (when
          tagged) index into it *)
}

let align_up x a = (x + a - 1) / a * a

let prepare (cfg : Config.t) ~optimized ?threads ?(core_offset = 0)
    ?(vaddr_base = 0) ?name ?(warmup_phases = 0)
    ?(index_lookup = fun _ _ -> 0) ?profile ?(attr = false) program =
  let analysis = Analysis.analyze program in
  let ccfg = Config.customize_config cfg in
  let report =
    if optimized then Some (Core.Transform.run ?profile ccfg analysis)
    else None
  in
  let layout_for (info : Analysis.array_info) =
    match report with
    | Some r -> Core.Transform.layout_of r info.Analysis.decl.Lang.Ast.name
    | None ->
      Core.Layout.identity ~array:info.Analysis.decl.Lang.Ast.name
        ~extents:info.Analysis.extents ~elem_bytes:(Config.elem_bytes cfg)
  in
  (* base-address padding: align every array to num_mcs interleaving units
     and to num_mcs pages, so the chunk-to-controller arithmetic holds
     under both granularities *)
  let num_mcs = Core.Cluster.num_mcs (Config.cluster cfg) in
  let alignment =
    let a = num_mcs * (Config.l2_line cfg) and b = num_mcs * (Config.page_bytes cfg) in
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    a * b / gcd a b
  in
  let next = ref (align_up (max vaddr_base alignment) alignment) in
  let table = Hashtbl.create 16 in
  let bases =
    List.map
      (fun (info : Analysis.array_info) ->
        let layout = layout_for info in
        let base = !next in
        next := align_up (base + Core.Layout.size_bytes layout) alignment;
        Hashtbl.replace table info.Analysis.decl.Lang.Ast.name (base, layout);
        (info.Analysis.decl.Lang.Ast.name, base))
      analysis.Analysis.arrays
  in
  let addr_of array index =
    let base, layout = Hashtbl.find table array in
    base + (Core.Layout.offset_of_index layout index * (Config.elem_bytes cfg))
  in
  let cores_total = Noc.Topology.nodes (Config.topo cfg) in
  let tpc = cfg.threads_per_core in
  let threads =
    match threads with Some t -> t | None -> cores_total * tpc
  in
  let sites = Lang.Sites.of_program program in
  (* the interpreter traces the original program, so resolving sites by
     physical ref identity is exact; site ids travel in a side band
     (never in the access ints, whose high bits verify's replay owns) *)
  let phases, site_streams =
    if attr then begin
      let tagged =
        Lang.Interp.trace_tagged ~threads ~threads_per_core:tpc ~addr_of
          ~index_lookup:(fun a v -> index_lookup a v)
          ~site_of:(Lang.Sites.id_of_ref sites)
          program
      in
      (List.map fst tagged, List.map snd tagged)
    end
    else
      ( Lang.Interp.trace ~threads ~threads_per_core:tpc ~addr_of
          ~index_lookup:(fun a v -> index_lookup a v)
          program,
        [] )
  in
  let node_of_thread =
    Array.init threads (fun t ->
        let core = (t / tpc) + core_offset in
        Core.Cluster.node_of_thread (Config.cluster cfg) (Config.topo cfg) (core mod cores_total))
  in
  let job =
    {
      Engine.name = Option.value name ~default:"job";
      phases;
      node_of_thread;
      warmup_phases;
      site_streams;
      start_time = 0;
      start_after = None;
      free_vpage_range = None;
    }
  in
  (* page hints: only pages belonging to layout-optimized arrays carry a
     desired controller; the rest are placed by the OS (first touch) *)
  let hinted_ranges =
    match report with
    | None -> []
    | Some r ->
      List.filter_map
        (fun (d : Core.Transform.decision) ->
          if d.Core.Transform.optimized then begin
            let name = d.Core.Transform.info.Lang.Analysis.decl.Lang.Ast.name in
            let base, layout = Hashtbl.find table name in
            let first = base / (Config.page_bytes cfg) in
            let last = (base + Core.Layout.size_bytes layout - 1) / (Config.page_bytes cfg) in
            Some (first, last)
          end
          else None)
        r.Core.Transform.decisions
  in
  let desired_mc vpage =
    if List.exists (fun (a, b) -> vpage >= a && vpage <= b) hinted_ranges then
      Some (vpage mod num_mcs)
    else None
  in
  { program; analysis; report; job; bases; desired_mc; sites }

let combined_hints preps vpage =
  List.fold_left
    (fun acc p -> match acc with Some _ -> acc | None -> p.desired_mc vpage)
    None preps

let attr_for (cfg : Config.t) p =
  let num_mcs = Core.Cluster.num_mcs (Config.cluster cfg) in
  let sites =
    Array.map
      (fun (s : Lang.Sites.site) ->
        {
          Obs.Attr.array = s.Lang.Sites.array;
          write = s.Lang.Sites.write;
          phase = s.Lang.Sites.phase;
          loc = Lang.Span.to_string s.Lang.Sites.span;
        })
      (Lang.Sites.sites p.sites)
  in
  Obs.Attr.create ~sites ~mcs:num_mcs ~banks:(Config.banks_per_mc cfg)
    ~max_hops:Stats.max_hops

(* rebind a prepared job's threads onto one cluster's cores (ascending
   node ids, threads-per-core consecutive) so replicated jobs become
   partition-confined for the parallel engine *)
let confine cfg ~cluster:c p =
  let cl = Config.cluster cfg and topo = Config.topo cfg in
  let nodes =
    Array.of_list
      (List.filter
         (fun n -> Core.Cluster.cluster_of_node cl topo n = c)
         (List.init (Noc.Topology.nodes topo) Fun.id))
  in
  let tpc = max 1 cfg.Config.threads_per_core in
  let node_of_thread =
    Array.init
      (Array.length p.job.Engine.node_of_thread)
      (fun t -> nodes.(t / tpc mod Array.length nodes))
  in
  { p with job = { p.job with Engine.node_of_thread } }

(* one confined copy of the program per cluster: the canonical
   embarrassingly-decomposable workload the parallel engine speeds up
   (bench smoke, oracle tests, simulate --replicate) *)
let prepare_replicas cfg ~optimized ?threads ?name ?(warmup_phases = 0)
    ?index_lookup ?profile ?(attr = false) program =
  let cl = Config.cluster cfg in
  let nclusters = Core.Cluster.num_clusters cl in
  let threads =
    match threads with
    | Some t -> t
    | None -> Core.Cluster.cores_per_cluster cl * max 1 cfg.Config.threads_per_core
  in
  let slice = 256 * 1024 * 1024 in
  let base = Option.value name ~default:"job" in
  List.init nclusters (fun c ->
      let p =
        prepare cfg ~optimized ~threads ~vaddr_base:(c * slice)
          ~name:(Printf.sprintf "%s@%d" base c) ~warmup_phases ?index_lookup
          ?profile ~attr program
      in
      confine cfg ~cluster:c p)

let run cfg ~optimized ?warmup_phases ?index_lookup ?profile ?trace
    ?(domains = 1) ?on_plan program =
  let p = prepare cfg ~optimized ?warmup_phases ?index_lookup ?profile program in
  Par_engine.run cfg ~desired_mc_of_vpage:p.desired_mc ?trace ?on_plan ~domains
    ~jobs:[ p.job ] ()

let run_many ?trace ?attr ?(domains = 1) ?on_plan cfg ~jobs =
  Par_engine.run cfg
    ~desired_mc_of_vpage:(combined_hints jobs)
    ?trace ?attr ?on_plan ~domains
    ~jobs:(List.map (fun p -> p.job) jobs)
    ()
