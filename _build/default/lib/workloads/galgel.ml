(** galgel (SPEC OMP): Galerkin FEM for convection — dominated by dense
    linear algebra with transposed operand access, the textbook case for
    the dimension-permuting transformation (Fig. 9). *)

let app =
  App.make ~name:"galgel"
    ~description:"Galerkin FEM: transposed-operand dense updates"
    ~warmup_nests:2
    {|
param N = 320;
array B1[N][N];
array C1[N][N];
// sparse inits, scrambled with respect to the compute partition
parfor i0 = 0 to N/16-1 {
  for j0 = 0 to N/16-1 {
    B1[16*i0][16*j0] = i0 + j0;
  }
}
parfor j0 = 0 to N/16-1 {
  for i = 0 to N-1 {
    C1[i][16*j0] = 0;
  }
}
parfor j = 0 to N-1 {
  for i = 0 to N-1 {
    C1[j][i] = C1[j][i] + B1[i][j];
  }
}
parfor j = 1 to N-2 {
  for i = 0 to N-1 {
    C1[j][i] = C1[j][i] + C1[j-1][i] + C1[j+1][i];
  }
}
|}
