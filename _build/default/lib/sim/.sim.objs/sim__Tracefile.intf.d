lib/sim/tracefile.mli: Lang
