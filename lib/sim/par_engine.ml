(* Partition-confined parallel simulation: see par_engine.mli for the
   protocol argument.  The plan scans the precomputed access traces once
   (O(total accesses), with a last-page fast path) and either proves the
   workload decomposes into per-cluster partitions that can exchange no
   events, or names the first obstruction as the fallback reason. *)

type partition = {
  part_cluster : int;
  part_clusters : int list;
  part_mcs : int list;
  part_nodes : int list;
  part_jobs : int list;
}

type plan = Parallel of partition array | Sequential of string

exception Reject of string

let rejectf fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

(* --- the confinement proof ------------------------------------------- *)

let job_clusters cfg (js : Engine.job array) =
  let cluster = Config.cluster cfg and topo = Config.topo cfg in
  Array.mapi
    (fun i (j : Engine.job) ->
      if Array.length j.Engine.node_of_thread = 0 then
        rejectf "job %d (%s) has no threads" i j.Engine.name;
      let c =
        Core.Cluster.cluster_of_node cluster topo j.Engine.node_of_thread.(0)
      in
      Array.iter
        (fun n ->
          if Core.Cluster.cluster_of_node cluster topo n <> c then
            rejectf "job %d (%s) spans clusters" i j.Engine.name)
        j.Engine.node_of_thread;
      c)
    js

let check_chains (js : Engine.job array) job_cluster =
  Array.iteri
    (fun i (j : Engine.job) ->
      match j.Engine.start_after with
      (* same liveness rule as the engine: only in-range non-self
         predecessors actually chain *)
      | Some p when p >= 0 && p < Array.length js && p <> i ->
        if job_cluster.(p) <> job_cluster.(i) then
          rejectf "job %d (%s) chains after a job in another cluster" i
            j.Engine.name
      | _ -> ())
    js

(* vpage -> owning cluster over every access of every job (warmup
   included — warmup accesses allocate pages too) *)
let scan_pages cfg (js : Engine.job array) job_cluster =
  let page_bytes = Config.page_bytes cfg in
  let owner : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  Array.iteri
    (fun i (j : Engine.job) ->
      let c = job_cluster.(i) in
      let last = ref min_int in
      List.iter
        (fun (phase : Lang.Interp.phase) ->
          Array.iter
            (fun stream ->
              Array.iter
                (fun a ->
                  let v = Lang.Interp.addr_of_access a / page_bytes in
                  if v <> !last then begin
                    last := v;
                    match Hashtbl.find_opt owner v with
                    | Some c' ->
                      if c' <> c then
                        rejectf "virtual page %d is touched by clusters %d and %d"
                          v c' c
                    | None -> Hashtbl.add owner v c
                  end)
                stream)
            phase)
        j.Engine.phases)
    js;
  owner

let check_free_ranges (js : Engine.job array) job_cluster page_owner =
  let ranges =
    Array.to_list js
    |> List.mapi (fun i (j : Engine.job) ->
           Option.map (fun (a, b) -> (a, b, job_cluster.(i), i)) j.Engine.free_vpage_range)
    |> List.filter_map Fun.id
  in
  if ranges <> [] then
    Hashtbl.iter
      (fun v c ->
        List.iter
          (fun (a, b, rc, i) ->
            if v >= a && v <= b && rc <> c then
              rejectf "job %d frees a vpage range overlapping cluster %d pages"
                i c)
          ranges)
      page_owner

(* Placement under the run's policy: every page must land on a controller
   of its own cluster, within that controller's frame budget — then the
   per-partition allocators reproduce the sequential frame assignment
   exactly and never fall back across partitions. *)
let check_placement cfg ?desired_mc_of_vpage page_owner =
  let cluster = Config.cluster cfg in
  let num_mcs = Config.num_mcs cfg in
  let head c = List.hd (Core.Cluster.mcs_of_cluster cluster c) in
  let desired_of v c =
    match cfg.Config.page_policy with
    | Config.Hardware -> v mod num_mcs
    | Config.First_touch -> head c
    | Config.Mc_aware -> (
      let hint =
        match desired_mc_of_vpage with
        | Some f -> f v
        | None -> Some (v mod num_mcs)
      in
      match hint with Some m -> m | None -> head c)
  in
  let mc_pages = Array.make num_mcs 0 in
  Hashtbl.iter
    (fun v c ->
      let m = desired_of v c in
      if m < 0 || m >= num_mcs || Core.Cluster.cluster_of_mc cluster m <> c then
        rejectf "virtual page %d desires controller %d outside its cluster" v m;
      mc_pages.(m) <- mc_pages.(m) + 1)
    page_owner;
  Array.iteri
    (fun m n ->
      if n > cfg.Config.frames_per_mc then
        rejectf "controller %d needs %d frames but has %d" m n
          cfg.Config.frames_per_mc)
    mc_pages

let cluster_nodes cfg c =
  let cluster = Config.cluster cfg and topo = Config.topo cfg in
  let nodes = Noc.Topology.nodes topo in
  List.filter
    (fun n -> Core.Cluster.cluster_of_node cluster topo n = c)
    (List.init nodes Fun.id)

(* Under the optimal scheme requests go to the nearest controller site,
   whatever cluster owns it. *)
let check_nearest cfg parts =
  if cfg.Config.optimal then
    let pl = Config.placement cfg and topo = Config.topo cfg in
    Array.iter
      (fun p ->
        List.iter
          (fun n ->
            let m = Noc.Placement.nearest pl topo n in
            if not (List.mem m p.part_mcs) then
              rejectf
                "optimal scheme: node %d's nearest controller %d is foreign" n m)
          p.part_nodes)
      parts

(* Every link any partition's XY routes can touch (between its nodes and
   controller sites) must belong to it alone — the no-cross-traffic leg
   of the proof.  Clusters are rectangles and XY routes stay inside the
   endpoints' bounding box, so in practice this holds whenever each
   controller's site sits inside its own cluster. *)
let check_links cfg parts =
  let topo = Config.topo cfg and pl = Config.placement cfg in
  let owner = Array.make (Noc.Topology.num_link_ids topo) (-1) in
  Array.iteri
    (fun pi p ->
      let endpoints =
        List.sort_uniq compare
          (p.part_nodes @ List.map (Noc.Placement.mc_node pl) p.part_mcs)
      in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src <> dst then
                Array.iter
                  (fun l ->
                    if owner.(l) >= 0 && owner.(l) <> pi then
                      rejectf "partitions %d and %d share mesh links" owner.(l)
                        pi
                    else owner.(l) <- pi)
                  (Noc.Topology.link_ids topo ~src ~dst))
            endpoints)
        endpoints)
    parts

(* Chiplet boundaries are natural partitions: when the platform is
   hierarchical and every per-cluster partition lies inside one chiplet,
   the clusters of a chiplet are merged into a single partition — the
   partition cut then runs along the scarce inter-chiplet links, and two
   clusters sharing on-die links inside a chiplet no longer defeat the
   no-shared-links leg of the proof.  Any cluster spanning chiplets keeps
   the per-cluster decomposition.  Flat platforms pass through
   untouched. *)
let merge_by_chiplet cfg parts =
  let topo = Config.topo cfg in
  if Noc.Topology.num_chiplets topo < 2 then parts
  else
    let chiplet_of p =
      match p.part_nodes with
      | [] -> None
      | n :: rest ->
        let c = Noc.Topology.chiplet_of_node topo n in
        if
          List.for_all
            (fun m -> Noc.Topology.chiplet_of_node topo m = c)
            rest
        then Some c
        else None
    in
    let tags = Array.map chiplet_of parts in
    if Array.exists (fun t -> t = None) tags then parts
    else begin
      let groups = Hashtbl.create 8 in
      Array.iteri
        (fun i p ->
          let c = Option.get tags.(i) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt groups c) in
          Hashtbl.replace groups c (p :: prev))
        parts;
      let chiplets =
        List.sort_uniq compare (Array.to_list (Array.map Option.get tags))
      in
      Array.of_list
        (List.map
           (fun c ->
             let ps = List.rev (Hashtbl.find groups c) in
             let all f = List.sort_uniq compare (List.concat_map f ps) in
             {
               part_cluster = (List.hd ps).part_cluster;
               part_clusters = all (fun p -> p.part_clusters);
               part_mcs = all (fun p -> p.part_mcs);
               part_nodes = all (fun p -> p.part_nodes);
               part_jobs = all (fun p -> p.part_jobs);
             })
           chiplets)
    end

let plan (cfg : Config.t) ?desired_mc_of_vpage ~(jobs : Engine.job list) () =
  let cluster = Config.cluster cfg in
  let js = Array.of_list jobs in
  try
    if Array.length js = 0 then raise (Reject "no jobs");
    if cfg.Config.l2_org <> Config.Private_l2 then
      raise (Reject "shared L2 homes lines across clusters");
    if Config.interleaving cfg <> Dram.Address_map.Page_interleaved then
      raise (Reject "line interleaving uses one global frame allocator");
    if Core.Cluster.num_clusters cluster < 2 then
      raise (Reject "platform has a single cluster");
    let job_cluster = job_clusters cfg js in
    check_chains js job_cluster;
    let page_owner = scan_pages cfg js job_cluster in
    check_free_ranges js job_cluster page_owner;
    check_placement cfg ?desired_mc_of_vpage page_owner;
    let parts =
      List.init (Core.Cluster.num_clusters cluster) (fun c ->
          let part_jobs =
            List.filteri (fun i _ -> job_cluster.(i) = c) (List.init (Array.length js) Fun.id)
          in
          {
            part_cluster = c;
            part_clusters = [ c ];
            part_mcs = Core.Cluster.mcs_of_cluster cluster c;
            part_nodes = cluster_nodes cfg c;
            part_jobs;
          })
      |> List.filter (fun p -> p.part_jobs <> [])
      |> Array.of_list
    in
    let parts = merge_by_chiplet cfg parts in
    if Array.length parts < 2 then
      raise (Reject "all jobs live in one cluster partition");
    check_nearest cfg parts;
    check_links cfg parts;
    Parallel parts
  with Reject reason -> Sequential reason

let describe plan ~domains =
  match plan with
  | Sequential reason -> Printf.sprintf "sequential engine (%s)" reason
  | Parallel parts ->
    let clusters =
      String.concat ","
        (Array.to_list
           (Array.map
              (fun p ->
                String.concat "+" (List.map string_of_int p.part_clusters))
              parts))
    in
    Printf.sprintf "parallel: %d partitions (clusters %s) on %d worker domain%s%s"
      (Array.length parts) clusters
      (min domains (Array.length parts))
      (if min domains (Array.length parts) = 1 then "" else "s")
      (if Par_backend.available then "" else " [no domain support: serialized]")

(* --- partitioned execution and the deterministic merge ---------------- *)

let run_parallel cfg ?desired_mc_of_vpage ?attr ~domains ~jobs parts =
  let js = Array.of_list jobs in
  let n = Array.length js in
  let np = Array.length parts in
  let job_part = Array.make n (-1) in
  Array.iteri
    (fun pi p -> List.iter (fun i -> job_part.(i) <- pi) p.part_jobs)
    parts;
  (* each partition records into its own clone of the caller's cube *)
  let sub_attr =
    match attr with
    | None -> Array.make np None
    | Some cube -> Array.init np (fun _ -> Some (Obs.Attr.create_like cube))
  in
  let run_one pi =
    (* foreign jobs keep their list positions (so job ids and the
       jid-seeded jitter streams line up with the sequential run) but
       carry no work: an empty job completes at its start time without
       touching stats, pages or the network *)
    let pjobs =
      List.mapi
        (fun i (j : Engine.job) ->
          if job_part.(i) = pi then j
          else
            {
              j with
              Engine.phases = [];
              site_streams = [];
              free_vpage_range = None;
            })
        jobs
    in
    Engine.run cfg ?desired_mc_of_vpage ?attr:sub_attr.(pi) ~jobs:pjobs ()
  in
  let results =
    Par_backend.map_workers ~workers:domains run_one (Array.init np Fun.id)
  in
  (* registry counters add, gauges max, histograms add — all partition
     metrics have disjoint supports, so the fold is order-insensitive *)
  let stats = ref (Stats.merge results.(0).Engine.stats results.(1).Engine.stats) in
  for pi = 2 to np - 1 do
    stats := Stats.merge !stats results.(pi).Engine.stats
  done;
  let stats = !stats in
  let horizon = max 1 (Stats.finish_time stats) in
  let num_mcs = Config.num_mcs cfg in
  let mc_owner = Array.make num_mcs (-1) in
  Array.iteri
    (fun pi p -> List.iter (fun m -> mc_owner.(m) <- pi) p.part_mcs)
    parts;
  let own_mc m none some =
    if mc_owner.(m) < 0 then none else some results.(mc_owner.(m))
  in
  let mc_occ_integral =
    Array.init num_mcs (fun m ->
        own_mc m 0. (fun r -> r.Engine.mc_occ_integral.(m)))
  in
  let mc_occupancy =
    Array.map (fun integral -> integral /. float_of_int horizon) mc_occ_integral
  in
  let link_busy =
    Array.init
      (Array.length results.(0).Engine.link_busy)
      (fun l ->
        Array.fold_left (fun acc r -> acc + r.Engine.link_busy.(l)) 0 results)
  in
  let link_utilization =
    Array.map (fun b -> float_of_int b /. float_of_int horizon) link_busy
  in
  let job_measured =
    Array.init n (fun i -> results.(job_part.(i)).Engine.job_measured.(i))
  in
  (match attr with
  | None -> ()
  | Some cube ->
    Array.iter
      (function
        | None -> ()
        | Some sub -> (
          match Obs.Attr.absorb cube (Obs.Attr.snapshot sub) with
          | Ok () -> ()
          | Error e -> invalid_arg ("Par_engine: " ^ e)))
      sub_attr;
    (* the per-partition engines published these gauges at their local
       horizons; recompute them at the merged horizon exactly as the
       sequential engine does *)
    let reg = Stats.registry stats in
    let nl = Array.length link_utilization in
    let mx = Array.fold_left Float.max 0. link_utilization in
    let sum = Array.fold_left ( +. ) 0. link_utilization in
    Obs.Metrics.set (Obs.Metrics.gauge reg "noc.max_link_utilization") mx;
    Obs.Metrics.set
      (Obs.Metrics.gauge reg "noc.avg_link_utilization")
      (if nl = 0 then 0. else sum /. float_of_int nl));
  {
    Engine.stats;
    measured_time = Array.fold_left max 0 job_measured;
    job_measured;
    job_finish =
      Array.init n (fun i -> results.(job_part.(i)).Engine.job_finish.(i));
    job_start =
      Array.init n (fun i -> results.(job_part.(i)).Engine.job_start.(i));
    job_offchip =
      Array.init n (fun i -> results.(job_part.(i)).Engine.job_offchip.(i));
    job_fallbacks =
      Array.init n (fun i -> results.(job_part.(i)).Engine.job_fallbacks.(i));
    mc_occupancy;
    mc_row_hit_rate =
      Array.init num_mcs (fun m ->
          own_mc m 0. (fun r -> r.Engine.mc_row_hit_rate.(m)));
    mc_max_queue =
      Array.init num_mcs (fun m ->
          own_mc m 0 (fun r -> r.Engine.mc_max_queue.(m)));
    mc_occ_integral;
    link_utilization;
    link_busy;
    pages_allocated =
      Array.fold_left (fun acc r -> acc + r.Engine.pages_allocated) 0 results;
  }

let run (cfg : Config.t) ?desired_mc_of_vpage ?trace ?attr ?on_plan ~domains
    ~jobs () =
  let note s = match on_plan with Some f -> f s | None -> () in
  let sequential reason =
    note (describe (Sequential reason) ~domains);
    Engine.run cfg ?desired_mc_of_vpage ?trace ?attr ~jobs ()
  in
  if domains <= 1 then sequential "domains=1"
  else
    match trace with
    | Some t when Obs.Trace.enabled t -> sequential "request tracing is on"
    | _ -> (
      match plan cfg ?desired_mc_of_vpage ~jobs () with
      | Sequential reason -> sequential reason
      | Parallel parts as p ->
        note (describe p ~domains);
        run_parallel cfg ?desired_mc_of_vpage ?attr ~domains ~jobs parts)
