lib/dram/address_map.mli:
