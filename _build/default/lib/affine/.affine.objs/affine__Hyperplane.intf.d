lib/affine/hyperplane.mli: Format Vec
