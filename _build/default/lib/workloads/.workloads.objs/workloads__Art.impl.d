lib/workloads/art.ml: App
