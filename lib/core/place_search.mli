(** Placement search: deterministic, seeded local search over the joint
    platform space — MC attachment sites (drawn from a {!Noc.Placement}
    site pool) × cluster shapes × controller counts under the platform's
    MC budget.

    The paper fixes the machine and optimizes the program onto it; this
    module treats the placement itself as the optimization variable
    (Tootaghaj & Farhat, PAPERS.md).  The objective is
    {!Mapping_select.estimated_cost} at a calibrated bank pressure; the
    simulator remains the validation oracle.

    Search shape: for every preset candidate ({!Platform.candidates}) the
    descent starts from the preset's own placement — so the searched
    minimum is never worse than the best preset, by construction — plus
    [restarts] seeded random site subsets, and performs best-improvement
    descent over the {!Noc.Placement.neighborhood} (relocate + swap)
    moves.  Everything is deterministic for a given seed: the PRNG is a
    fixed LCG (not [Random.State], whose algorithm differs across OCaml
    versions), neighborhoods are enumerated in a fixed order, and
    exact-cost ties break on cluster name then lexicographic sites.  The
    same seed therefore emits a byte-identical platform JSON. *)

type params = {
  pool : Noc.Placement.pool;  (** candidate MC sites (default perimeter) *)
  seed : int;
  restarts : int;  (** random starts per cluster shape, beyond the preset *)
}

val default_params : params
(** Perimeter pool, seed 0, 3 restarts. *)

type outcome = {
  platform : Platform.t;
      (** the winning machine; its name and placement name embed a short
          digest of the cluster geometry and site list, so caches keyed
          by placement {e name} (sweep results, [Sim.Config.to_json])
          distinguish searched placements *)
  cost : float;  (** estimated cost of [platform] at the search pressure *)
  preset_best : Mapping_select.scored;  (** cheapest preset candidate *)
  scored_presets : Mapping_select.scored list;
      (** all preset candidates, cheapest first *)
  trajectory : string list;
      (** human-readable descent log, in execution order: one line per
          start and per improving move, each ending in [cost=...] *)
  evaluations : int;  (** cost-model evaluations performed *)
}

val search :
  ?params:params ->
  bank_pressure:float ->
  Platform.t ->
  (outcome, string) result
(** [search ~bank_pressure base] explores the space [base] can realize.
    [outcome.cost <= (preset_best).cost] always holds.  Errors only on a
    platform admitting no candidates (impossible for preset platforms) or
    an internal constructor failure. *)
