(** Compiler selection among candidate L2-to-MC mappings (Section 4).

    Fully automatic derivation of the best mapping is impractical, but
    given a candidate set the compiler can weigh (1) distance-to-MC and
    (2) memory-level parallelism and pick the most effective one — the
    analysis that favours M2 over M1 for fma3d and minighost. *)

type metrics = {
  avg_distance : float;
      (** mean hops from a core to the controllers of its cluster *)
  mcs_per_cluster : int;  (** [k] — the MLP a cluster enjoys *)
}

val evaluate : Noc.Topology.t -> Cluster.t -> Noc.Placement.t -> metrics

val estimated_cost :
  Noc.Topology.t ->
  Cluster.t ->
  Noc.Placement.t ->
  bank_pressure:float ->
  float
(** Expected off-chip round-trip cost under the mapping:
    [2·avg_distance·per_hop + queue_wait], with the queueing term scaled
    by the profiled [bank_pressure] (mean bank-queue occupancy under the
    default mapping) and divided across the cluster's [k] controllers. *)

val choose_opt :
  Noc.Topology.t ->
  candidates:(Cluster.t * Noc.Placement.t) list ->
  bank_pressure:float ->
  (Cluster.t * Noc.Placement.t) option
(** The candidate with the lowest {!estimated_cost}; [None] when the
    candidate list is empty. *)

val choose :
  Noc.Topology.t ->
  candidates:(Cluster.t * Noc.Placement.t) list ->
  bank_pressure:float ->
  Cluster.t * Noc.Placement.t
(** Raising wrapper over {!choose_opt} ([Invalid_argument] on an empty
    list). *)
