(** The full layout-transformation pass (Algorithm 1).

    Iterates over every array of the program; for each, determines the
    Data-to-Core mapping from all its references (weighted by trip
    count), then customizes the layout for the configured L2 organization,
    interleaving granularity and L2-to-MC mapping.  Indexed references are
    approximated from a profile when one is supplied; arrays whose best
    approximation exceeds the inaccuracy threshold, or that have no
    parallel affine reference, keep their original layout. *)

type why_kept =
  | Index_array  (** auxiliary integer array, never transformed *)
  | No_parallel_reference
  | No_solution  (** only the trivial [gᵥ] exists *)
  | Bad_approximation of float  (** indexed fit above threshold *)

type decision = {
  info : Lang.Analysis.array_info;
  layout : Layout.t;
  optimized : bool;
  kept : why_kept option;  (** [Some _] iff not optimized *)
  satisfied_weight : int;  (** reference weight the chosen layout satisfies *)
  total_weight : int;
}

type report = {
  decisions : decision list;
  pct_arrays_optimized : float;  (** Table 2, column 2 (data arrays only) *)
  pct_refs_satisfied : float;  (** Table 2, column 3 (weighted) *)
}

type outcome =
  | Solved of Data_to_core.solution
  | Kept of why_kept

type solved = {
  s_info : Lang.Analysis.array_info;
  s_refs : Data_to_core.weighted_ref list;
      (** the weighted references the solver saw (after indexed
          approximation) — kept for the inter-pass verifier *)
  s_total : int;  (** total reference weight, satisfied or not *)
  s_outcome : outcome;
}

val v_dim : int
(** The data-partition dimension of the transformed space (0: the
    slowest-varying, footnote 3). *)

val solve_all :
  ?profile:(string -> (Affine.Vec.t * Affine.Vec.t) list) ->
  ?threshold:float ->
  Lang.Analysis.t ->
  solved list
(** Algorithm 1, platform-independent half: per array, collect weighted
    references (approximating indexed ones from the profile) and solve
    the Data-to-Core system.  [profile array] returns (iteration,
    data-vector) samples for arrays with indexed references (default: no
    profile, such arrays are kept). *)

val customize_all : Customize.config -> solved list -> report
(** Algorithm 1, platform-dependent half: customize every solved mapping
    for the given L2 organization / interleaving / cluster mapping. *)

val run :
  ?profile:(string -> (Affine.Vec.t * Affine.Vec.t) list) ->
  ?threshold:float ->
  Customize.config ->
  Lang.Analysis.t ->
  report
(** [run cfg a = customize_all cfg (solve_all a)]. *)

val pp_solved : Format.formatter -> solved -> unit

val layout_of : report -> string -> Layout.t
(** Layout chosen for an array (identity when kept).  Raises [Not_found]
    for unknown arrays. *)

val rewrite_program : report -> Lang.Ast.program -> Lang.Ast.program
(** The transformed source: every reference to an optimized array gets its
    customized subscripts (Fig. 9c) and declarations get the padded
    extents. *)

val pp_report : Format.formatter -> report -> unit
