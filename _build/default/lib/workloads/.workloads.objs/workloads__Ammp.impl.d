lib/workloads/ammp.ml: App
