module Vec = Affine.Vec
module Matrix = Affine.Matrix

type dim_expr =
  | D of int
  | Div of dim_expr * int
  | Mod of dim_expr * int
  | Perm of dim_expr * int array

type out_dim = { expr : dim_expr; extent : int }

type t = {
  array : string;
  u : Matrix.t;
  a_shift : Vec.t;
  out : out_dim array;
  orig_extents : int array;
  elem_bytes : int;
  p_elems : int;
}

let identity ~array ~extents ~elem_bytes =
  {
    array;
    u = Matrix.identity (Array.length extents);
    a_shift = Vec.zero (Array.length extents);
    out = Array.mapi (fun i n -> { expr = D i; extent = n }) extents;
    orig_extents = Array.copy extents;
    elem_bytes;
    p_elems = 1;
  }

let is_identity l =
  Matrix.equal l.u (Matrix.identity (Array.length l.orig_extents))
  && Array.length l.out = Array.length l.orig_extents
  && Array.for_all Fun.id
       (Array.mapi
          (fun i d -> d.expr = D i && d.extent = l.orig_extents.(i))
          l.out)
  && Vec.is_zero l.a_shift

let make ~array ~u ?a_shift ~out ~orig_extents ~elem_bytes ~p_elems () =
  let a_shift =
    match a_shift with Some s -> s | None -> Vec.zero (Matrix.rows u)
  in
  { array; u; a_shift; out; orig_extents; elem_bytes; p_elems }

let rec simplify_expr = function
  | D i -> D i
  | Div (e, 1) -> simplify_expr e
  | Div (e, k) -> Div (simplify_expr e, k)
  | Mod (e, k) -> Mod (simplify_expr e, k)
  | Perm (e, t) -> Perm (simplify_expr e, t)

let simplify l =
  let out =
    Array.of_list
      (List.filter_map
         (fun d ->
           if d.extent = 1 then None
           else Some { d with expr = simplify_expr d.expr })
         (Array.to_list l.out))
  in
  (* a degenerate layout must keep at least one dimension *)
  let out = if Array.length out = 0 then [| { expr = D 0; extent = 1 } |] else out in
  { l with out }

let size_elems l = Array.fold_left (fun n d -> n * d.extent) 1 l.out

let size_bytes l = size_elems l * l.elem_bytes

let rec eval_dim e a' =
  match e with
  | D i -> a'.(i)
  | Div (e, k) -> eval_dim e a' / k
  | Mod (e, k) -> eval_dim e a' mod k
  | Perm (e, t) -> t.(eval_dim e a')

let offset_of_index l a =
  let a' = Vec.add (Matrix.mul_vec l.u a) l.a_shift in
  let off = ref 0 in
  Array.iter (fun d -> off := (!off * d.extent) + eval_dim d.expr a') l.out;
  !off

let rec pp_dim_expr ~names ppf = function
  | D i -> Format.pp_print_string ppf (List.nth names i)
  | Div (e, k) -> Format.fprintf ppf "(%a)/%d" (pp_dim_expr ~names) e k
  | Mod (e, k) -> Format.fprintf ppf "(%a)%%%d" (pp_dim_expr ~names) e k
  | Perm (e, _) -> Format.fprintf ppf "__home[%a]" (pp_dim_expr ~names) e

(* Symbolic U·s over AST subscript expressions. *)
let transformed_components u subs =
  let subs = Array.of_list subs in
  Array.init (Matrix.rows u) (fun i ->
      let acc = ref None in
      Array.iteri
        (fun j c ->
          if c <> 0 then begin
            let term =
              if c = 1 then subs.(j)
              else if c = -1 then Lang.Ast.Neg subs.(j)
              else Lang.Ast.Mul (Lang.Ast.Int c, subs.(j))
            in
            acc :=
              Some (match !acc with None -> term | Some e -> Lang.Ast.Add (e, term))
          end)
        (Matrix.row u i);
      Option.value !acc ~default:(Lang.Ast.Int 0))

let transformed_subscripts l subs =
  if List.length subs <> Array.length l.orig_extents then
    invalid_arg "Layout.transformed_subscripts";
  let comps = transformed_components l.u subs in
  let comps =
    Array.mapi
      (fun i e ->
        if l.a_shift.(i) = 0 then e else Lang.Ast.Add (e, Lang.Ast.Int l.a_shift.(i)))
      comps
  in
  let rec to_expr = function
    | D i -> comps.(i)
    | Div (e, k) -> Lang.Ast.Div (to_expr e, Lang.Ast.Int k)
    | Mod (e, k) -> Lang.Ast.Mod (to_expr e, Lang.Ast.Int k)
    | Perm (e, _) ->
      (* emitted as a compiler-generated lookup (index array) *)
      Lang.Ast.Load (Lang.Ast.mk_ref ~array:"__home" ~subs:[ to_expr e ] ())
  in
  Array.to_list (Array.map (fun d -> to_expr d.expr) l.out)

let pp ppf l =
  let names =
    List.init (Array.length l.orig_extents) (fun i -> Printf.sprintf "a%d" i)
  in
  Format.fprintf ppf "@[<v>%s: U =@,%a@,dims:" l.array Matrix.pp l.u;
  Array.iter
    (fun d ->
      Format.fprintf ppf "@,  [%a] x%d" (pp_dim_expr ~names) d.expr d.extent)
    l.out;
  Format.fprintf ppf "@]"
