examples/stencil_localization.mli:
