let all =
  [
    Wupwise.app;
    Swim.app;
    Mgrid.app;
    Applu.app;
    Galgel.app;
    Apsi.app;
    Gafort.app;
    Fma3d.app;
    Art.app;
    Ammp.app;
    Hpccg.app;
    Minighost.app;
    Minimd.app;
  ]

(* The 13 fixed apps, plus the generated tiled-GEMM family by spec name.
   [all] deliberately excludes gemm: every figure of the paper iterates
   the fixed suite. *)
let by_name name =
  match List.find_opt (fun (a : App.t) -> String.equal a.App.name name) all with
  | Some a -> a
  | None -> (
    match Gemm.of_name name with
    | Some (Ok app) -> app
    | Some (Error e) -> invalid_arg e
    | None -> raise Not_found)

let names = List.map (fun (a : App.t) -> a.App.name) all
