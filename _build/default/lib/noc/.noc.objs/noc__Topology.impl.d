lib/noc/topology.ml: Coord List
